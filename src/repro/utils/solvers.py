"""Numeric solvers used by the SDEM optimization schemes.

Every closed-form scheme in the paper reduces to one of three numeric
primitives:

* a monotone root find for first-order conditions such as
  ``sum_k (w_k / (d_k - x))**lam = alpha_m / (beta * (lam - 1))``
  (Section 5.1.1) -- :func:`bisect_increasing`;
* a one-dimensional convex minimization over a closed interval
  (the per-case energy functions ``E_i(Delta)`` of Sections 4.1/4.2) --
  :func:`minimize_convex_1d`;
* a two-dimensional convex minimization over a box for the coupled
  Eq. (13) blocks where the middle Case-3 tasks tie ``Delta_1`` and
  ``Delta_2`` together -- :func:`minimize_convex_2d_box`.

All solvers are deterministic and allocation-light; they are called inside
O(n^4)/O(n^5) dynamic programs, so constant factors matter.  Every solver
invocation is counted in a per-process tally (:func:`solver_call_counts`)
so the experiment engine can report how much numeric work each simulation
unit performed (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

try:  # the batched primitives need numpy; everything scalar does not
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-less CI legs
    _np = None  # type: ignore[assignment]

_GOLDEN = (math.sqrt(5.0) - 1.0) / 2.0

# ---------------------------------------------------------------------------
# Solver-call accounting
# ---------------------------------------------------------------------------

#: Per-process tally of numeric-solver invocations.  Worker processes of the
#: parallel experiment engine each carry their own copy; the engine snapshots
#: the totals around every work unit and ships the delta back with the
#: result, so counts aggregate correctly across processes.
_CALL_COUNTS: Dict[str, int] = {}


def record_solver_call(name: str, by: int = 1) -> None:
    """Add ``by`` to the named counter (shared with :mod:`repro.core.blocks`)."""
    _CALL_COUNTS[name] = _CALL_COUNTS.get(name, 0) + by


def solver_call_counts() -> Dict[str, int]:
    """A copy of the per-counter tallies accumulated in this process."""
    return dict(_CALL_COUNTS)


def solver_call_total() -> int:
    """Total solver invocations recorded in this process."""
    return sum(_CALL_COUNTS.values())


#: Per-process tally of wall-clock seconds spent inside solver entry
#: points (see :func:`add_solver_seconds`).  Like the call counts, worker
#: processes accumulate their own copy and the experiment engine ships the
#: per-unit delta back with each result, so ``repro bench`` can report a
#: measured solver/engine wall-time split for every mode -- including the
#: pooled one, where wrapping module attributes in the parent process
#: would see nothing.
_SOLVER_SECONDS: List[float] = [0.0]


def add_solver_seconds(seconds: float) -> None:
    """Accumulate wall time spent inside a solver entry point."""
    _SOLVER_SECONDS[0] += seconds


def solver_seconds_total() -> float:
    """Solver wall-clock seconds recorded in this process."""
    return _SOLVER_SECONDS[0]


def reset_solver_counts() -> None:
    """Zero every counter (test isolation / benchmark baselines)."""
    _CALL_COUNTS.clear()
    _SOLVER_SECONDS[0] = 0.0


def bisect_increasing(
    func: Callable[[float], float],
    lo: float,
    hi: float,
    *,
    tol: float = 1e-12,
    max_iter: int = 200,
) -> float:
    """Find the root of an increasing function on ``[lo, hi]``.

    The function is assumed (weakly) increasing.  If ``func(lo) >= 0`` the
    root is clamped to ``lo``; if ``func(hi) <= 0`` it is clamped to ``hi``.
    This clamping behaviour is exactly what the paper's boundary analysis
    requires: when the unconstrained extreme value falls outside the feasible
    domain, the boundary point is the constrained optimum.

    Parameters
    ----------
    func:
        Increasing function of one variable.
    lo, hi:
        Bracket endpoints, ``lo <= hi``.
    tol:
        Absolute tolerance on the argument.
    max_iter:
        Iteration cap; with ``tol=1e-12`` and millisecond-scale domains the
        loop terminates far earlier.
    """
    if lo > hi:
        raise ValueError(f"empty bracket: lo={lo} > hi={hi}")
    record_solver_call("bisect")
    flo = func(lo)
    if flo >= 0.0:
        return lo
    fhi = func(hi)
    if fhi <= 0.0:
        return hi
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        if hi - lo <= tol:
            return mid
        fmid = func(mid)
        if fmid < 0.0:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def golden_section_minimize(
    func: Callable[[float], float],
    lo: float,
    hi: float,
    *,
    tol: float = 1e-10,
    max_iter: int = 200,
) -> Tuple[float, float]:
    """Minimize a unimodal function on ``[lo, hi]``.

    Returns ``(argmin, min_value)``.  Golden-section search needs no
    derivatives, which keeps the per-case energy functions of Sections
    4.1/4.2 usable even at the piecewise joints where they are continuous
    but not differentiable.
    """
    if lo > hi:
        raise ValueError(f"empty interval: lo={lo} > hi={hi}")
    record_solver_call("golden_section")
    if hi - lo <= tol:
        x = 0.5 * (lo + hi)
        return x, func(x)
    a, b = lo, hi
    x1 = b - _GOLDEN * (b - a)
    x2 = a + _GOLDEN * (b - a)
    f1, f2 = func(x1), func(x2)
    # Track the best point ever *evaluated*: when the minimum sits on a
    # cliff edge (graded-penalty feasibility boundaries in the block
    # solvers), the final bracket's midpoint can land a hair inside the
    # penalty region even though a probe already hit the true minimum.
    best = min(((x1, f1), (x2, f2)), key=lambda item: item[1])
    for _ in range(max_iter):
        if b - a <= tol:
            break
        if f1 <= f2:
            b, x2, f2 = x2, x1, f1
            x1 = b - _GOLDEN * (b - a)
            f1 = func(x1)
            if f1 < best[1]:
                best = (x1, f1)
        else:
            a, x1, f1 = x1, x2, f2
            x2 = a + _GOLDEN * (b - a)
            f2 = func(x2)
            if f2 < best[1]:
                best = (x2, f2)
    # Include the midpoint and the endpoints: a constrained optimum
    # frequently sits on the feasible-domain boundary (the paper's
    # "just-fit"/"invalid" cases).
    mid = 0.5 * (a + b)
    candidates = [best, (mid, func(mid)), (lo, func(lo)), (hi, func(hi))]
    return min(candidates, key=lambda item: item[1])


def minimize_convex_1d(
    func: Callable[[float], float],
    lo: float,
    hi: float,
    *,
    tol: float = 1e-10,
    guess: Optional[float] = None,
    guess_radius: Optional[float] = None,
) -> Tuple[float, float]:
    """Minimize a convex function on ``[lo, hi]``; returns ``(argmin, value)``.

    Thin wrapper over :func:`golden_section_minimize` (convex implies
    unimodal) kept as a separate name so call sites document their convexity
    assumption.

    When ``guess`` is given, a narrow bracket of half-width ``guess_radius``
    (default 5% of the interval) around the guess is searched first.  For a
    convex function the narrow result is provably the global argmin whenever
    it lands strictly inside the narrow bracket -- or on a bracket edge that
    coincides with the domain boundary; otherwise the full interval is
    searched.  Call sites that scan adjacent ``Delta`` breakpoint segments
    (e.g. :func:`repro.core.heterogeneous.solve_common_release_heterogeneous`)
    pass the previous segment's argmin, collapsing most segments to a handful
    of evaluations once the minimum has been bracketed.
    """
    if lo > hi:
        raise ValueError(f"empty interval: lo={lo} > hi={hi}")
    if hi - lo <= tol:
        # Degenerate bracket (typical of warm-start bracketing): the
        # midpoint is already within tolerance, so skip the golden loop.
        x = 0.5 * (lo + hi)
        return x, func(x)
    if guess is not None and hi > lo:
        radius = 0.05 * (hi - lo) if guess_radius is None else guess_radius
        g_lo = max(lo, guess - radius)
        g_hi = min(hi, guess + radius)
        if g_hi - g_lo > tol and (g_hi - g_lo) < 0.5 * (hi - lo):
            x, value = golden_section_minimize(func, g_lo, g_hi, tol=tol)
            margin = max(10.0 * tol, 1e-3 * (g_hi - g_lo))
            # An argmin on a narrow-bracket edge that is *not* the domain
            # boundary means the true minimum may lie outside the bracket.
            left_ok = g_lo <= lo + margin or x > g_lo + margin
            right_ok = g_hi >= hi - margin or x < g_hi - margin
            if left_ok and right_ok:
                record_solver_call("warm_start_hit")
                return x, value
    return golden_section_minimize(func, lo, hi, tol=tol)


def minimize_convex_2d_box(
    func: Callable[[float, float], float],
    x_bounds: Tuple[float, float],
    y_bounds: Tuple[float, float],
    *,
    tol: float = 1e-9,
    max_rounds: int = 60,
) -> Tuple[float, float, float]:
    """Minimize a jointly convex function over an axis-aligned box.

    Coordinate descent with exact (golden-section) line minimizations.  For a
    convex function over a box, coordinate descent converges to the global
    box-constrained minimum because the only non-smoothness we encounter is
    at the box faces.  Returns ``(x, y, value)``.

    Used for the Eq. (13)/(15) blocks where Case-3 tasks couple
    ``Delta_1`` and ``Delta_2`` through the term
    ``(d_n' - Delta_1 - Delta_2) ** (1 - lam)``.
    """
    x_lo, x_hi = x_bounds
    y_lo, y_hi = y_bounds
    if x_lo > x_hi or y_lo > y_hi:
        raise ValueError("empty box")
    x = 0.5 * (x_lo + x_hi)
    y = 0.5 * (y_lo + y_hi)
    value = func(x, y)
    for _ in range(max_rounds):
        new_x, _ = golden_section_minimize(lambda t: func(t, y), x_lo, x_hi, tol=tol)
        new_y, _ = golden_section_minimize(lambda t: func(new_x, t), y_lo, y_hi, tol=tol)
        new_value = func(new_x, new_y)
        moved = abs(new_x - x) + abs(new_y - y)
        x, y = new_x, new_y
        if value - new_value <= tol and moved <= tol:
            value = min(value, new_value)
            break
        value = new_value
    return x, y, value


# ---------------------------------------------------------------------------
# Batched primitives (numpy numeric core)
#
# The vectorized backend (repro.core.vectorized) replaces "one Python call
# per probe" with "one array call per *iteration*": K independent 1-D
# problems advance together, each iteration evaluating every still-active
# problem's next probe in a single batched objective call.  The batched
# objective receives ``(xs, idx)`` -- probe positions plus the indices of
# the problems they belong to -- and returns the objective values; the
# ``idx`` array lets callers route each probe to its own sub-problem
# (e.g. its own (i, j) cell of the pair enumeration).
# ---------------------------------------------------------------------------


def _require_numpy(name: str):
    if _np is None:  # pragma: no cover - exercised on numpy-less CI legs
        raise RuntimeError(f"{name} requires numpy, which is not installed")
    return _np


def bisect_increasing_batch(
    func: Callable[["_np.ndarray", "_np.ndarray"], "_np.ndarray"],
    lo: Sequence[float],
    hi: Sequence[float],
    *,
    tol: float = 1e-12,
    max_iter: int = 200,
) -> "_np.ndarray":
    """Roots of K increasing functions on per-problem brackets.

    Batched transcription of :func:`bisect_increasing`, including its
    boundary clamps (``func >= 0`` at ``lo`` pins the root to ``lo``;
    ``func <= 0`` at ``hi`` pins it to ``hi``).  ``func(xs, idx)`` must
    evaluate problem ``idx[k]`` at position ``xs[k]``; only still-active
    problems are evaluated each iteration (boolean-mask advancement).
    """
    np = _require_numpy("bisect_increasing_batch")
    lo = np.asarray(lo, dtype=np.float64).copy()
    hi = np.asarray(hi, dtype=np.float64).copy()
    if (lo > hi).any():
        bad = int(np.argmax(lo > hi))
        raise ValueError(f"empty bracket: lo={lo[bad]} > hi={hi[bad]}")
    record_solver_call("bisect_batch")
    k = lo.shape[0]
    result = np.empty(k, dtype=np.float64)
    all_idx = np.arange(k)
    flo = func(lo, all_idx)
    at_lo = flo >= 0.0
    result[at_lo] = lo[at_lo]
    active = ~at_lo
    if active.any():
        idx = all_idx[active]
        fhi = func(hi[idx], idx)
        at_hi = fhi <= 0.0
        result[idx[at_hi]] = hi[idx[at_hi]]
        active[idx[at_hi]] = False
    for _ in range(max_iter):
        if not active.any():
            break
        idx = all_idx[active]
        mid = 0.5 * (lo[idx] + hi[idx])
        converged = hi[idx] - lo[idx] <= tol
        result[idx[converged]] = mid[converged]
        active[idx[converged]] = False
        live = idx[~converged]
        if live.shape[0] == 0:
            continue
        mid_live = mid[~converged]
        fmid = func(mid_live, live)
        below = fmid < 0.0
        lo[live[below]] = mid_live[below]
        hi[live[~below]] = mid_live[~below]
    if active.any():
        idx = all_idx[active]
        result[idx] = 0.5 * (lo[idx] + hi[idx])
    return result


def golden_section_minimize_batch(
    func: Callable[["_np.ndarray", "_np.ndarray"], "_np.ndarray"],
    lo: Sequence[float],
    hi: Sequence[float],
    *,
    tol: float = 1e-10,
    max_iter: int = 200,
) -> Tuple["_np.ndarray", "_np.ndarray"]:
    """Minimize K unimodal functions on per-problem intervals.

    Batched transcription of :func:`golden_section_minimize`: per-problem
    best-ever tracking, the same endpoint/midpoint candidate sweep at the
    end, and degenerate intervals (``hi - lo <= tol``) short-circuiting to
    their midpoint evaluation.  Each iteration issues one ``func`` call
    covering every still-active problem's single new probe.  Returns
    ``(argmins, values)``.
    """
    np = _require_numpy("golden_section_minimize_batch")
    lo = np.asarray(lo, dtype=np.float64)
    hi = np.asarray(hi, dtype=np.float64)
    if (lo > hi).any():
        bad = int(np.argmax(lo > hi))
        raise ValueError(f"empty interval: lo={lo[bad]} > hi={hi[bad]}")
    record_solver_call("golden_section_batch")
    k = lo.shape[0]
    all_idx = np.arange(k)
    degenerate = hi - lo <= tol
    best_x = np.empty(k, dtype=np.float64)
    best_f = np.full(k, math.inf, dtype=np.float64)
    if degenerate.any():
        idx = all_idx[degenerate]
        mids = 0.5 * (lo[idx] + hi[idx])
        best_x[idx] = mids
        best_f[idx] = func(mids, idx)
    live = all_idx[~degenerate]
    if live.shape[0] == 0:
        return best_x, best_f
    a = lo[live].copy()
    b = hi[live].copy()
    x1 = b - _GOLDEN * (b - a)
    x2 = a + _GOLDEN * (b - a)
    f1 = func(x1, live)
    f2 = func(x2, live)
    lower_wins = f1 <= f2
    cur_x = np.where(lower_wins, x1, x2)
    cur_f = np.where(lower_wins, f1, f2)
    best_x[live] = cur_x
    best_f[live] = cur_f
    active = np.ones(live.shape[0], dtype=bool)
    for _ in range(max_iter):
        active &= b - a > tol
        if not active.any():
            break
        sel = np.flatnonzero(active)
        shrink_right = f1[sel] <= f2[sel]
        r = sel[shrink_right]
        l = sel[~shrink_right]
        # f1 <= f2: drop [x2, b]; the old x1 becomes the new x2.
        b[r] = x2[r]
        x2[r] = x1[r]
        f2[r] = f1[r]
        x1[r] = b[r] - _GOLDEN * (b[r] - a[r])
        # f1 > f2: drop [a, x1]; the old x2 becomes the new x1.
        a[l] = x1[l]
        x1[l] = x2[l]
        f1[l] = f2[l]
        x2[l] = a[l] + _GOLDEN * (b[l] - a[l])
        probes = np.concatenate([x1[r], x2[l]])
        owners = np.concatenate([live[r], live[l]])
        values = func(probes, owners)
        f1[r] = values[: r.shape[0]]
        f2[l] = values[r.shape[0]:]
        improved_r = f1[r] < best_f[live[r]]
        best_x[live[r[improved_r]]] = x1[r[improved_r]]
        best_f[live[r[improved_r]]] = f1[r[improved_r]]
        improved_l = f2[l] < best_f[live[l]]
        best_x[live[l[improved_l]]] = x2[l[improved_l]]
        best_f[live[l[improved_l]]] = f2[l[improved_l]]
    # Endpoint / midpoint candidates, exactly as the scalar sweep.
    mids = 0.5 * (a + b)
    probes = np.concatenate([mids, lo[live], hi[live]])
    owners = np.concatenate([live, live, live])
    values = func(probes, owners)
    n_live = live.shape[0]
    for offset, xs in ((0, mids), (n_live, lo[live]), (2 * n_live, hi[live])):
        vals = values[offset: offset + n_live]
        better = vals < best_f[live]
        best_x[live[better]] = xs[better]
        best_f[live[better]] = vals[better]
    return best_x, best_f


def weighted_power_sum(weights: Sequence[float], exponent: float) -> float:
    """Return ``sum(w ** exponent for w in weights)``.

    Tiny helper shared by the closed forms Eq. (4) and Eq. (8); isolated so
    tests can property-check it against numpy.
    """
    return float(sum(w ** exponent for w in weights))

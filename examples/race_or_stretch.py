#!/usr/bin/env python3
"""Race to idle or not?  The title question, answered numerically.

For a fixed task, sweep the memory's static power and report the optimal
execution speed chosen by the Section 4.2 scheme.  With frugal memory the
scheme stretches toward the core's critical speed (do NOT race); as the
memory gets hungrier, the optimum climbs until it saturates at ``s_up``
(race to idle).  The crossover is exactly the memory-associated critical
speed ``s_cm`` of Section 5.2 crossing the hardware limit.

Run:  python examples/race_or_stretch.py
"""

from __future__ import annotations

from repro import Task, TaskSet, paper_platform, solve_common_release
from repro.models import MemoryModel


def main() -> None:
    task = TaskSet([Task(0.0, 100.0, 20000.0, "job")])
    print("single 20 Mcycle task, deadline 100 ms, 1x Cortex-A57 core")
    print(f"{'alpha_m (W)':>12s} {'chosen speed (MHz)':>20s} "
          f"{'s_cm (MHz)':>12s} {'verdict':>16s}")
    for alpha_m_w in (0.0, 0.1, 0.3, 0.5, 1.0, 2.0, 4.0, 8.0):
        platform = paper_platform(xi=0.0, xi_m=0.0).with_memory(
            MemoryModel(alpha_m=alpha_m_w * 1000.0, xi_m=0.0)
        )
        solution = solve_common_release(task, platform)
        speed = solution.speeds["job"]
        s_cm = platform.core.s_cm(platform.memory.alpha_m)
        if speed >= platform.core.s_up - 1.0:
            verdict = "race to idle"
        elif abs(speed - platform.core.s_m) < 1.0:
            verdict = "core-critical"
        else:
            verdict = "balanced"
        print(f"{alpha_m_w:12.2f} {speed:20.1f} {s_cm:12.1f} {verdict:>16s}")

    print(
        "\nThe chosen speed tracks s_cm = ((alpha + alpha_m) / (2 beta))^(1/3)"
        "\nand saturates at s_up = 1900 MHz: a hungry memory makes racing"
        "\noptimal; a frugal one rewards stretching.  'Race to idle or not'"
        "\nis a property of the alpha_m / alpha ratio, not a universal rule."
    )


if __name__ == "__main__":
    main()

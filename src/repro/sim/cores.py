"""Core allocation for online policies.

The paper's experiments fix eight physical cores and assume fewer than
eight tasks ever run concurrently (Section 8.1.2); its theory assumes an
unbounded supply.  :class:`CoreAllocator` supports both and is
*time-aware*: a released core advertises the instant it becomes free, and
``acquire(owner, start)`` only reuses cores already free at ``start``.
This matters because a policy may emit, in one batch, a run that begins
before a previously-emitted run has ended; reusing that core would create
an overlapping timeline.  Overflow beyond the physical supply is reported
-- not hidden -- so experiments can verify the paper's concurrency
assumption held.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

__all__ = ["CoreAllocator"]


class CoreAllocator:
    """Tracks which owner (task) holds which core, with release times."""

    def __init__(self, num_cores: Optional[int] = None):
        if num_cores is not None and num_cores < 1:
            raise ValueError(f"num_cores must be >= 1, got {num_cores}")
        self._num_cores = num_cores
        self._owner_to_core: Dict[str, int] = {}
        #: core index -> instant it becomes free again
        self._free_at: Dict[int, float] = {}
        self._next_fresh = 0
        self._peak = 0
        self._overflowed = False

    @property
    def num_cores(self) -> Optional[int]:
        return self._num_cores

    @property
    def peak_concurrency(self) -> int:
        """Highest number of simultaneously held cores seen so far."""
        return self._peak

    @property
    def overflowed(self) -> bool:
        """True if more cores were ever needed than physically exist."""
        return self._overflowed

    @property
    def total_cores_used(self) -> int:
        """Number of distinct core indices ever handed out."""
        return self._next_fresh

    def acquire(self, owner: str, start: float = -math.inf) -> int:
        """Return a core for ``owner`` whose timeline is free at ``start``."""
        core = self._owner_to_core.get(owner)
        if core is not None:
            return core
        usable = sorted(
            idx for idx, free_at in self._free_at.items() if free_at <= start + 1e-12
        )
        if usable:
            core = usable[0]
            del self._free_at[core]
        else:
            core = self._next_fresh
            self._next_fresh += 1
        self._owner_to_core[owner] = core
        held = len(self._owner_to_core) + len(self._free_at)
        self._peak = max(self._peak, len(self._owner_to_core))
        if self._num_cores is not None and held > self._num_cores:
            self._overflowed = True
        return core

    def release(self, owner: str, at: float = -math.inf) -> None:
        """Free ``owner``'s core from instant ``at`` onward."""
        core = self._owner_to_core.pop(owner, None)
        if core is not None:
            self._free_at[core] = at

    def holder_count(self) -> int:
        return len(self._owner_to_core)

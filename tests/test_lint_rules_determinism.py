"""DET001-DET005: true positives and the false-positive guards."""

from __future__ import annotations

from tests.lint_helpers import run_lint, rule_ids


class TestWallClockDET001:
    def test_time_time_flagged(self, tmp_path):
        source = """
            import time

            def stamp():
                return time.time()
        """
        findings = run_lint(str(tmp_path), {"src/repro/m.py": source}, rules=["DET001"])
        assert rule_ids(findings) == ["DET001"]

    def test_aliased_datetime_now_flagged(self, tmp_path):
        source = """
            from datetime import datetime as dt

            def stamp():
                return dt.now()
        """
        findings = run_lint(str(tmp_path), {"src/repro/m.py": source}, rules=["DET001"])
        assert rule_ids(findings) == ["DET001"]

    def test_monotonic_clocks_allowed(self, tmp_path):
        source = """
            import time

            def measure():
                return time.monotonic() - time.perf_counter()
        """
        findings = run_lint(str(tmp_path), {"src/repro/m.py": source}, rules=["DET001"])
        assert findings == []


class TestUnseededRandomDET002:
    def test_global_random_flagged(self, tmp_path):
        source = """
            import random

            def jitter():
                return random.random() + random.uniform(0, 1)
        """
        findings = run_lint(str(tmp_path), {"src/repro/m.py": source}, rules=["DET002"])
        assert rule_ids(findings) == ["DET002", "DET002"]

    def test_seeded_instance_allowed(self, tmp_path):
        source = """
            import random

            def trace(seed):
                rng = random.Random(seed)
                return [rng.uniform(0, 1) for _ in range(3)]
        """
        findings = run_lint(str(tmp_path), {"src/repro/m.py": source}, rules=["DET002"])
        assert findings == []


class TestUnsortedJsonDET003:
    def test_unsorted_dumps_in_hashing_function_flagged(self, tmp_path):
        source = """
            import hashlib
            import json

            def key(payload):
                return hashlib.sha256(json.dumps(payload).encode()).hexdigest()
        """
        findings = run_lint(str(tmp_path), {"src/repro/m.py": source}, rules=["DET003"])
        assert rule_ids(findings) == ["DET003"]

    def test_sorted_dumps_allowed(self, tmp_path):
        source = """
            import hashlib
            import json

            def key(payload):
                canonical = json.dumps(payload, sort_keys=True)
                return hashlib.sha256(canonical.encode()).hexdigest()
        """
        findings = run_lint(str(tmp_path), {"src/repro/m.py": source}, rules=["DET003"])
        assert findings == []

    def test_dumps_without_hashing_allowed(self, tmp_path):
        source = """
            import json

            def pretty(payload):
                return json.dumps(payload, indent=2)
        """
        findings = run_lint(str(tmp_path), {"src/repro/m.py": source}, rules=["DET003"])
        assert findings == []


class TestSetIterationDET004:
    def test_for_over_set_call_flagged(self, tmp_path):
        source = """
            def names(rows):
                out = []
                for name in set(rows):
                    out.append(name)
                return out
        """
        findings = run_lint(str(tmp_path), {"src/repro/m.py": source}, rules=["DET004"])
        assert rule_ids(findings) == ["DET004"]

    def test_comprehension_over_set_literal_flagged(self, tmp_path):
        source = """
            def squares():
                return [x * x for x in {1, 2, 3}]
        """
        findings = run_lint(str(tmp_path), {"src/repro/m.py": source}, rules=["DET004"])
        assert rule_ids(findings) == ["DET004"]

    def test_join_over_set_flagged(self, tmp_path):
        source = """
            def label(parts):
                return ",".join(set(parts))
        """
        findings = run_lint(str(tmp_path), {"src/repro/m.py": source}, rules=["DET004"])
        assert rule_ids(findings) == ["DET004"]

    def test_sorted_set_allowed(self, tmp_path):
        source = """
            def names(rows):
                return [name for name in sorted(set(rows))]
        """
        findings = run_lint(str(tmp_path), {"src/repro/m.py": source}, rules=["DET004"])
        assert findings == []

    def test_membership_test_allowed(self, tmp_path):
        source = """
            def keep(rows, wanted):
                allowed = set(wanted)
                return [r for r in rows if r in allowed]
        """
        findings = run_lint(str(tmp_path), {"src/repro/m.py": source}, rules=["DET004"])
        assert findings == []


class TestFloatEqualityDET005:
    def test_arithmetic_comparison_flagged_in_core(self, tmp_path):
        source = """
            def check(a, b, c):
                return a + b == c
        """
        findings = run_lint(
            str(tmp_path), {"src/repro/core/m.py": source}, rules=["DET005"]
        )
        assert rule_ids(findings) == ["DET005"]

    def test_nonsentinel_literal_flagged(self, tmp_path):
        source = """
            def check(x):
                return x == 0.5
        """
        findings = run_lint(
            str(tmp_path), {"src/repro/energy/m.py": source}, rules=["DET005"]
        )
        assert rule_ids(findings) == ["DET005"]

    def test_sentinel_zero_allowed(self, tmp_path):
        source = """
            def check(alpha):
                return alpha == 0.0 or alpha == 1.0 or alpha == -1.0
        """
        findings = run_lint(
            str(tmp_path), {"src/repro/core/m.py": source}, rules=["DET005"]
        )
        assert findings == []

    def test_out_of_scope_package_not_flagged(self, tmp_path):
        source = """
            def check(a, b, c):
                return a + b == c
        """
        findings = run_lint(
            str(tmp_path), {"src/repro/service/m.py": source}, rules=["DET005"]
        )
        assert findings == []

"""Offline YDS speed scaling (Yao, Demers, Shenker, FOCS 1995).

Single core, preemptive, continuous speeds: repeatedly find the *critical
interval* ``[a, b]`` maximizing the intensity

    g(a, b) = (sum of workloads of jobs with [r, d] inside [a, b]) / (b - a),

schedule those jobs EDF at that constant speed inside ``[a, b]``, excise the
interval from the timeline, and recurse on the remaining jobs.  The result
minimizes ``integral of s(t)**lam`` for any ``lam > 1`` simultaneously.

The excision is realized with a growing list of *blocked* spans and a
coordinate map between real time and "available" time, so the emitted
pieces live on the original axis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = ["JobPiece", "yds_schedule", "yds_energy"]


@dataclass(frozen=True)
class JobPiece:
    """One constant-speed execution piece of one job."""

    name: str
    start: float
    end: float
    speed: float

    @property
    def workload(self) -> float:
        return self.speed * (self.end - self.start)


@dataclass(frozen=True)
class _Job:
    name: str
    release: float
    deadline: float
    workload: float


class _Timeline:
    """Real axis with excised (blocked) spans and coordinate maps."""

    def __init__(self) -> None:
        self._blocked: List[Tuple[float, float]] = []

    def block(self, start: float, end: float) -> None:
        self._blocked.append((start, end))
        self._blocked.sort()
        merged: List[Tuple[float, float]] = []
        for a, b in self._blocked:
            if merged and a <= merged[-1][1] + 1e-12:
                merged[-1] = (merged[-1][0], max(merged[-1][1], b))
            else:
                merged.append((a, b))
        self._blocked = merged

    def to_available(self, t: float) -> float:
        """Real time -> available time (blocked measure removed)."""
        shift = 0.0
        for a, b in self._blocked:
            if t <= a:
                break
            shift += min(t, b) - a
        return t - shift

    def to_real(self, u: float) -> float:
        """Available time -> real time (skipping blocked spans)."""
        t = u
        for a, b in self._blocked:
            if t < a - 1e-15:
                break
            t += b - a
        return t

    def real_pieces(self, u_start: float, u_end: float) -> List[Tuple[float, float]]:
        """Map an available-time span back to real, possibly split spans."""
        pieces: List[Tuple[float, float]] = []
        cursor_real = self.to_real(u_start)
        remaining = u_end - u_start
        for a, b in self._blocked:
            if b <= cursor_real:
                continue
            if remaining <= 1e-15:
                break
            if cursor_real < a:
                chunk = min(remaining, a - cursor_real)
                pieces.append((cursor_real, cursor_real + chunk))
                remaining -= chunk
                cursor_real += chunk
            if remaining > 1e-15 and cursor_real >= a - 1e-15:
                cursor_real = max(cursor_real, b)
        if remaining > 1e-15:
            pieces.append((cursor_real, cursor_real + remaining))
        return pieces


def yds_schedule(
    jobs: Iterable[Tuple[str, float, float, float]],
    *,
    tol: float = 1e-12,
) -> List[JobPiece]:
    """Optimal offline preemptive single-core speed-scaling schedule.

    Parameters
    ----------
    jobs:
        Iterables of ``(name, release, deadline, workload)``.

    Returns
    -------
    list of :class:`JobPiece` on the original time axis, EDF-ordered within
    each critical interval.
    """
    pending = [
        _Job(name, r, d, w) for name, r, d, w in jobs if w > 0.0
    ]
    for job in pending:
        if job.deadline <= job.release:
            raise ValueError(f"job {job.name}: empty feasible window")
    timeline = _Timeline()
    pieces: List[JobPiece] = []

    while pending:
        # Work in available coordinates.
        avail = [
            _Job(
                j.name,
                timeline.to_available(j.release),
                timeline.to_available(j.deadline),
                j.workload,
            )
            for j in pending
        ]
        points = sorted({j.release for j in avail} | {j.deadline for j in avail})
        best_intensity = -1.0
        best_span: Tuple[float, float] | None = None
        for i, a in enumerate(points):
            for b in points[i + 1 :]:
                inside = [j for j in avail if j.release >= a - tol and j.deadline <= b + tol]
                if not inside:
                    continue
                intensity = sum(j.workload for j in inside) / (b - a)
                if intensity > best_intensity + tol:
                    best_intensity = intensity
                    best_span = (a, b)
        assert best_span is not None
        a, b = best_span
        speed = best_intensity
        inside = [
            j for j in avail if j.release >= a - tol and j.deadline <= b + tol
        ]
        # Preemptive EDF at the critical speed inside [a, b] (available
        # coordinates); EDF at the critical intensity is always feasible.
        for name, u_start, u_end in _edf_pack(inside, a, speed):
            for real_a, real_b in timeline.real_pieces(u_start, u_end):
                pieces.append(JobPiece(name, real_a, real_b, speed))
        # Excise the critical interval and drop its jobs.
        real_span_pieces = timeline.real_pieces(a, b)
        done = {j.name for j in inside}
        pending = [j for j in pending if j.name not in done]
        for real_a, real_b in real_span_pieces:
            timeline.block(real_a, real_b)

    pieces.sort(key=lambda p: (p.start, p.name))
    return _merge_adjacent(pieces)


def _edf_pack(
    jobs: Sequence[_Job], start: float, speed: float
) -> List[Tuple[str, float, float]]:
    """Preemptive EDF simulation at a constant speed.

    ``jobs`` live on one (available-) time axis; execution may not begin
    before a job's release.  Returns ``(name, start, end)`` runs.
    """
    remaining: Dict[str, float] = {j.name: j.workload for j in jobs}
    info = {j.name: j for j in jobs}
    releases = sorted({j.release for j in jobs})
    runs: List[Tuple[str, float, float]] = []
    # Residuals smaller than the work done in ~1 femtosecond of schedule
    # time are float noise, not real workload; without this guard the loop
    # can stall on a residual too small to advance t.
    work_eps = 1e-12 * max(j.workload for j in jobs) if jobs else 0.0
    t = start
    while any(w > work_eps for w in remaining.values()):
        ready = [
            info[name]
            for name, w in remaining.items()
            if w > work_eps and info[name].release <= t + 1e-12
        ]
        if not ready:
            t = min(r for r in releases if r > t + 1e-12)
            continue
        job = min(ready, key=lambda j: (j.deadline, j.name))
        next_release = min(
            (r for r in releases if r > t + 1e-12), default=math.inf
        )
        finish = t + remaining[job.name] / speed
        end = min(finish, next_release)
        if end <= t:
            # The leftover cannot advance time at this float resolution.
            remaining[job.name] = 0.0
            continue
        runs.append((job.name, t, end))
        remaining[job.name] -= speed * (end - t)
        t = end
    return runs


def _merge_adjacent(pieces: List[JobPiece]) -> List[JobPiece]:
    """Merge touching pieces of the same job at the same speed."""
    merged: List[JobPiece] = []
    for p in pieces:
        if (
            merged
            and merged[-1].name == p.name
            and math.isclose(merged[-1].end, p.start, abs_tol=1e-9)
            and math.isclose(merged[-1].speed, p.speed, rel_tol=1e-9)
        ):
            merged[-1] = JobPiece(p.name, merged[-1].start, p.end, p.speed)
        else:
            merged.append(p)
    return merged


def yds_energy(
    jobs: Iterable[Tuple[str, float, float, float]],
    beta: float,
    lam: float,
) -> float:
    """Dynamic energy of the YDS schedule under ``P = beta * s**lam``."""
    return sum(
        beta * p.speed**lam * (p.end - p.start) for p in yds_schedule(jobs)
    )

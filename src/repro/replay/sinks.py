"""The two replay sinks: in-process SDEM-ON and the TCP solve service.

**In-process** (:func:`replay_inprocess`): every arrival enters the
:class:`~repro.core.online.SdemOnlinePolicy` replan path directly, with
*virtual-time fast-forward* -- the replayer never sleeps, it advances the
policy's clock from arrival to arrival, so a 10^5-job hour of simulated
traffic runs in seconds of wall time.  Per-job latency here is **virtual**
(finish instant minus arrival instant on the deterministic SDEM-ON
schedule), which is what makes the per-job table byte-reproducible
run-to-run for a fixed seed.  Wall-clock replan times are captured
separately as telemetry; the harness feeds them through an open-loop
queueing recursion to answer the *capacity* question (max sustainable
rate at a P99 SLO) without contaminating the deterministic table.

Overload behaviour: the common-release relaxation assumes unbounded
cores, so admitted jobs never miss deadlines by construction -- the
pressure valve is **admission**.  When the live backlog reaches
``max_backlog`` the arrival is shed (the deterministic analogue of the
service's two-lane admission queue), bounding both per-arrival solve
cost and the concurrency the relaxation assumes.

**Service** (:func:`replay_service`): arrivals are paced in real time
(optionally compressed by ``time_scale``) over a pool of pipelined
:class:`~repro.service.client.ServiceClient` connections on the
interactive lane.  This sink is open-loop in the strict sense: send
times follow the arrival process, never the responses.  Backpressure
(shed / queue-full) is honored via the client's capped
``retry_after_ms`` backoff; latencies are measured wall clock and are
*not* part of any reproducibility contract.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.online import SdemOnlinePolicy
from repro.energy.accounting import EnergyBreakdown, SleepPolicy, account_segments
from repro.models.platform import Platform
from repro.replay.arrivals import Job
from repro.schedule.timeline import ExecutionInterval

__all__ = [
    "JOB_STATUSES",
    "JobRecord",
    "ReplayOutcome",
    "replay_inprocess",
    "replay_service",
]

_EPS = 1e-6

#: Terminal states of one replayed job.
JOB_STATUSES = ("done", "shed", "timeout", "error")


@dataclass
class JobRecord:
    """Per-job outcome row -- the unit of the reproducibility contract.

    For the in-process sink every field except ``solve_wall_ms`` is
    derived from the deterministic virtual-time schedule; ``solve_wall_ms``
    is wall-clock telemetry and is excluded from the canonical table the
    harness digests.  For the service sink latency fields are measured
    and carry no determinism guarantee.
    """

    name: str
    arrival_ms: float
    deadline_ms: float
    workload_kc: float
    status: str = "done"
    start_ms: float = math.nan
    finish_ms: float = math.nan
    latency_ms: float = math.nan
    queue_wait_ms: float = math.nan
    deadline_met: bool = False
    attempts: int = 1
    solve_wall_ms: float = 0.0

    def canonical_row(self) -> list:
        """The digest row: deterministic fields only, fixed order."""
        return [
            self.name,
            self.arrival_ms,
            self.deadline_ms,
            self.workload_kc,
            self.status,
            self.start_ms if not math.isnan(self.start_ms) else None,
            self.finish_ms if not math.isnan(self.finish_ms) else None,
            self.latency_ms if not math.isnan(self.latency_ms) else None,
            self.queue_wait_ms if not math.isnan(self.queue_wait_ms) else None,
            self.deadline_met,
        ]


@dataclass
class ReplayOutcome:
    """What a sink hands to the harness: records plus sink-side totals."""

    sink: str
    records: List[JobRecord]
    energy: Optional[EnergyBreakdown] = None
    wall_seconds: float = 0.0
    solve_wall_ms: List[float] = field(default_factory=list)
    peak_concurrency: int = 0
    max_backlog_seen: int = 0
    shed_retries: int = 0

    @property
    def completed(self) -> List[JobRecord]:
        return [r for r in self.records if r.status == "done"]


def replay_inprocess(
    jobs: Sequence[Job],
    platform: Platform,
    *,
    max_backlog: int = 64,
    procrastinate: bool = True,
) -> ReplayOutcome:
    """Drive ``jobs`` through SDEM-ON with virtual-time fast-forward.

    Returns one :class:`ReplayOutcome` whose records carry virtual-time
    latencies (deterministic for a fixed job stream) and whose
    ``energy`` prices the union schedule under the policy's break-even
    memory/core sleep rules.
    """
    if max_backlog < 1:
        raise ValueError(f"max_backlog must be >= 1, got {max_backlog}")
    if not jobs:
        raise ValueError("cannot replay an empty job stream")

    policy = SdemOnlinePolicy(platform, procrastinate=procrastinate)
    segments: List[Tuple[int, ExecutionInterval]] = []
    records = [
        JobRecord(j.name, j.arrival_ms, j.deadline_ms, j.workload_kc) for j in jobs
    ]
    solve_wall_ms: List[float] = []
    max_backlog_seen = 0

    wall_started = time.perf_counter()
    now = jobs[0].arrival_ms
    for job, record in zip(jobs, records):
        if job.arrival_ms < now - _EPS:
            raise ValueError(
                f"job {job.name} arrives at {job.arrival_ms} before current "
                f"instant {now}; arrival streams must be time-ordered"
            )
        if job.arrival_ms > now:
            segments.extend(policy.run_until(now, job.arrival_ms))
            now = job.arrival_ms
        backlog = policy.live_jobs
        if backlog > max_backlog_seen:
            max_backlog_seen = backlog
        if backlog >= max_backlog:
            record.status = "shed"
            record.attempts = 0
            continue
        replan_started = time.perf_counter()
        policy.on_arrival(now, [job.task()])
        replan_ms = (time.perf_counter() - replan_started) * 1000.0
        record.solve_wall_ms = replan_ms
        solve_wall_ms.append(replan_ms)
    segments.extend(policy.run_until(now, math.inf))
    wall_seconds = time.perf_counter() - wall_started

    # Virtual completion instants: the policy removes a job once its
    # remaining workload hits zero, so a job's last interval end *is* its
    # finish and its first interval start is when it left the queue.
    first_start: Dict[str, float] = {}
    last_end: Dict[str, float] = {}
    for _core, interval in segments:
        name = interval.task
        if name not in first_start or interval.start < first_start[name]:
            first_start[name] = interval.start
        if name not in last_end or interval.end > last_end[name]:
            last_end[name] = interval.end
    for record in records:
        if record.status != "done":
            continue
        start = first_start.get(record.name)
        finish = last_end.get(record.name)
        if start is None or finish is None:
            # A zero-workload guard; Task validation should prevent this.
            record.status = "error"
            continue
        record.start_ms = start
        record.finish_ms = finish
        record.latency_ms = finish - record.arrival_ms
        record.queue_wait_ms = start - record.arrival_ms
        record.deadline_met = finish <= record.deadline_ms + _EPS

    energy: Optional[EnergyBreakdown] = None
    if segments:
        horizon_start = min(first_start.values())
        horizon_end = max(last_end.values())
        for record in records:
            if record.status == "done":
                horizon_start = min(horizon_start, record.arrival_ms)
                horizon_end = max(horizon_end, record.deadline_ms)
        energy = account_segments(
            segments,
            platform,
            horizon=(horizon_start, horizon_end),
            memory_policies=[policy.memory_policy],
            core_policy=policy.core_policy,
        )[0]

    return ReplayOutcome(
        sink="inproc",
        records=records,
        energy=energy,
        wall_seconds=wall_seconds,
        solve_wall_ms=solve_wall_ms,
        peak_concurrency=policy.peak_concurrency,
        max_backlog_seen=max_backlog_seen,
    )


def _service_wire(
    job: Job,
    scheme: str,
    lane: str,
    platform: Optional[Dict[str, float]] = None,
) -> Dict[str, object]:
    """One solve request for ``job``, re-anchored at its arrival.

    The instance is shipped release-0 (deadline = the job's span): the
    service solves the job's own feasible window, and the wire bytes do
    not depend on absolute virtual time.  ``platform`` overrides the
    server's paper-default platform parameters for this request.
    """
    wire: Dict[str, object] = {
        "kind": "solve",
        "scheme": scheme,
        "lane": lane,
        "tasks": [
            {
                "name": job.name,
                "release": 0.0,
                "deadline": job.span_ms,
                "workload": job.workload_kc,
            }
        ],
    }
    if platform is not None:
        wire["platform"] = platform
    return wire


async def replay_service(
    jobs: Sequence[Job],
    *,
    host: str,
    port: int,
    clients: int = 4,
    lane: str = "interactive",
    scheme: str = "auto",
    time_scale: float = 1.0,
    timeout_ms: float = 10_000.0,
    max_attempts: int = 3,
    backoff_cap_ms: float = 500.0,
    platform_cycle: Optional[Sequence[Dict[str, float]]] = None,
) -> ReplayOutcome:
    """Open-loop replay against a running solve server.

    Send instants follow the arrival process compressed by ``time_scale``
    (virtual ms / ``time_scale`` = wall ms; e.g. ``time_scale=20`` plays
    an hour of traffic in three minutes); responses never gate sends.
    Latencies are measured in **wall ms** and a job's deadline check
    compares wall latency against its span: the span is a per-job
    real-time SLO, so compressing the arrival spacing raises the load
    (denser arrivals) without artificially scaling response times.
    Shed / queue-full responses retry with the server-suggested capped
    backoff; a job is recorded ``shed`` only when its final attempt is
    still declined.

    ``platform_cycle`` rotates each job through a sequence of platform
    parameter overrides (job ``i`` gets entry ``i % len``).  A sharded
    server routes by platform fingerprint, so a single-platform stream
    exercises exactly one shard; cycling a handful of platforms is how
    the service bench slice spreads open-loop load across all shards.
    """
    import asyncio

    from repro.service import protocol
    from repro.service.client import RequestTimedOut, ServiceClient

    if time_scale <= 0.0:
        raise ValueError(f"time_scale must be positive, got {time_scale}")
    if not jobs:
        raise ValueError("cannot replay an empty job stream")

    records = [
        JobRecord(j.name, j.arrival_ms, j.deadline_ms, j.workload_kc) for j in jobs
    ]
    outcome = ReplayOutcome(sink="service", records=records)
    pool = [ServiceClient(host, port) for _ in range(max(1, clients))]
    await asyncio.gather(*(c.connect() for c in pool))

    loop = asyncio.get_running_loop()
    epoch = loop.time()
    origin_ms = jobs[0].arrival_ms

    def backpressure(_code: str, _delay_ms: float) -> None:
        outcome.shed_retries += 1

    async def fire(index: int, job: Job, record: JobRecord) -> None:
        target = epoch + (job.arrival_ms - origin_ms) / 1000.0 / time_scale
        delay = target - loop.time()
        if delay > 0.0:
            await asyncio.sleep(delay)
        client = pool[index % len(pool)]
        platform = (
            platform_cycle[index % len(platform_cycle)]
            if platform_cycle
            else None
        )
        wire = _service_wire(job, scheme, lane, platform)
        sent = loop.time()
        attempts_box = [0]

        def counting_backpressure(code: str, delay_ms: float) -> None:
            attempts_box[0] += 1
            backpressure(code, delay_ms)

        try:
            response = await client.request_with_retry(
                wire,
                timeout_ms=timeout_ms,
                max_attempts=max_attempts,
                backoff_cap_ms=backoff_cap_ms,
                on_backpressure=counting_backpressure,
            )
        except RequestTimedOut:
            record.status = "timeout"
            record.attempts = max_attempts
            return
        except ConnectionError:
            record.status = "error"
            return
        elapsed_wall_ms = (loop.time() - sent) * 1000.0
        record.attempts = 1 + attempts_box[0]
        record.latency_ms = elapsed_wall_ms
        record.queue_wait_ms = 0.0
        record.start_ms = job.arrival_ms
        record.finish_ms = job.arrival_ms + elapsed_wall_ms
        if response.get("ok"):
            record.status = "done"
            record.deadline_met = elapsed_wall_ms <= job.span_ms + _EPS
            timing = response.get("timing")
            if isinstance(timing, dict):
                solve_ms = timing.get("solve_ms")
                if isinstance(solve_ms, (int, float)):
                    record.solve_wall_ms = float(solve_ms)
                    outcome.solve_wall_ms.append(float(solve_ms))
        else:
            error = response.get("error")
            code = error.get("code") if isinstance(error, dict) else None
            if code in (protocol.E_SHEDDING, protocol.E_QUEUE_FULL):
                record.status = "shed"
            else:
                record.status = "error"

    wall_started = time.perf_counter()
    try:
        await asyncio.gather(
            *(fire(i, job, rec) for i, (job, rec) in enumerate(zip(jobs, records)))
        )
    finally:
        await asyncio.gather(*(c.close() for c in pool))
    outcome.wall_seconds = time.perf_counter() - wall_started
    return outcome

"""repro -- reproduction of "Race to idle or not: balancing the memory
sleep time with DVS for energy minimization" (Fu, Chau, Li, Xue; DATE 2015
/ Real-Time Systems 2017).

The library solves the SDEM problem -- *Sleep and DVS-aware system-wide
Energy Minimization* -- for multi-core platforms with a shared,
sleep-capable main memory:

* optimal offline schemes for common-release-time tasks
  (:func:`solve_common_release`) and agreeable-deadline tasks
  (:func:`solve_agreeable`), with and without core static power;
* transition-overhead-aware variants
  (:func:`solve_common_release_with_overhead`);
* the SDEM-ON online heuristic (:class:`SdemOnlinePolicy`) plus the
  MBKP/MBKPS baselines, an event-driven simulation engine and a shared
  energy accountant;
* the paper's workload generators and an experiment harness regenerating
  every table and figure of its evaluation (see ``benchmarks/`` and
  EXPERIMENTS.md).

Quickstart::

    from repro import Task, TaskSet, paper_platform, solve_common_release

    platform = paper_platform(xi_m=0.0)
    tasks = TaskSet([Task(0.0, 50.0, 2000.0), Task(0.0, 80.0, 3500.0)])
    solution = solve_common_release(tasks, platform)
    print(solution.delta, solution.predicted_energy)

Units: time in ms, speed in MHz, workload in kilocycles, power in mW,
energy in uJ (see DESIGN.md Section 7).
"""

from repro.models import (
    CorePowerModel,
    MemoryModel,
    Platform,
    Task,
    TaskSet,
    arm_cortex_a57,
    dram_50nm,
    paper_platform,
)
from repro.schedule import (
    CoreTimeline,
    ExecutionInterval,
    FeasibilityError,
    Schedule,
    is_feasible,
    validate_schedule,
)
from repro.energy import EnergyBreakdown, SleepPolicy, account
from repro.core import (
    AgreeableSolution,
    BlockSolution,
    CommonReleaseSolution,
    SdemOnlinePolicy,
    solve_agreeable,
    solve_block,
    solve_common_release,
    solve_common_release_alpha_nonzero,
    solve_common_release_alpha_zero,
    solve_common_release_with_overhead,
)
from repro.baselines import MbkpPolicy, RaceToIdlePolicy, mbkp, mbkps
from repro.sim import SimulationResult, simulate

__version__ = "1.0.0"

__all__ = [
    # models
    "CorePowerModel",
    "MemoryModel",
    "Platform",
    "Task",
    "TaskSet",
    "arm_cortex_a57",
    "dram_50nm",
    "paper_platform",
    # schedule & energy
    "CoreTimeline",
    "ExecutionInterval",
    "FeasibilityError",
    "Schedule",
    "is_feasible",
    "validate_schedule",
    "EnergyBreakdown",
    "SleepPolicy",
    "account",
    # core algorithms
    "AgreeableSolution",
    "BlockSolution",
    "CommonReleaseSolution",
    "SdemOnlinePolicy",
    "solve_agreeable",
    "solve_block",
    "solve_common_release",
    "solve_common_release_alpha_nonzero",
    "solve_common_release_alpha_zero",
    "solve_common_release_with_overhead",
    # baselines & simulation
    "MbkpPolicy",
    "RaceToIdlePolicy",
    "mbkp",
    "mbkps",
    "SimulationResult",
    "simulate",
    "__version__",
]

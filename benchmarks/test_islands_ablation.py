"""Voltage-island granularity ablation (the paper's named future work).

Quantifies the energy cost of sharing voltage rails: sweep the island
size from "one rail for everything" to "a rail per core" on random
common-release task sets and report the overhead relative to independent
per-core DVS (= the paper's Section 4.2 optimum).
"""

from __future__ import annotations

import random

from repro.core import solve_common_release
from repro.core.islands import solve_islands_common_release
from repro.models import Task, TaskSet, paper_platform

from conftest import emit


def test_island_granularity_sweep(benchmark, seeds):
    platform = paper_platform(xi=0.0, xi_m=0.0).with_num_cores(None)
    n = 8

    def run():
        sums = {1: 0.0, 2: 0.0, 4: 0.0, 8: 0.0, "section4": 0.0}
        for seed in range(seeds):
            rng = random.Random(1000 + seed)
            tasks = TaskSet(
                Task(0.0, rng.uniform(20.0, 120.0), rng.uniform(1000.0, 12000.0), f"t{k}")
                for k in range(n)
            )
            for islands in (1, 2, 4, 8):
                size = n // islands
                assignment = [
                    list(range(g * size, (g + 1) * size)) for g in range(islands)
                ]
                sol = solve_islands_common_release(tasks, platform, assignment)
                sums[islands] += sol.predicted_energy / seeds
            sums["section4"] += (
                solve_common_release(tasks, platform).predicted_energy / seeds
            )
        return sums

    sums = benchmark.pedantic(run, rounds=1, iterations=1)
    base = sums[8]
    emit(
        "Voltage-island granularity (avg energy, 8 tasks)",
        [
            f"  {k} island(s): {v / 1000.0:8.2f} mJ "
            f"({(v / base - 1.0) * 100.0:+5.1f}% vs per-core rails)"
            for k, v in sums.items()
            if k != "section4"
        ]
        + [f"  Section 4.2 optimum: {sums['section4'] / 1000.0:8.2f} mJ"],
    )
    # Monotone: finer islands never cost more.
    assert sums[1] >= sums[2] >= sums[4] >= sums[8] * (1.0 - 1e-9)
    # Per-core rails match the paper's per-task optimum.
    assert abs(sums[8] / sums["section4"] - 1.0) < 1e-2

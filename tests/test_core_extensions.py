"""Tests for the paper's stated extensions: heterogeneous cores (end of
Section 4.2) and discrete-voltage emulation (Ishihara-Yasuura, Section 3).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.discrete import (
    a57_levels,
    quantization_overhead,
    quantize_schedule,
    split_interval,
)
from repro.core.heterogeneous import solve_common_release_heterogeneous
from repro.core import solve_common_release
from repro.energy import account
from repro.models import (
    CorePowerModel,
    MemoryModel,
    Platform,
    Task,
    TaskSet,
)
from repro.schedule import ExecutionInterval, Schedule, validate_schedule


class TestHeterogeneous:
    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError, match="one core per task"):
            solve_common_release_heterogeneous(
                [Task(0, 10, 5)],
                [],
                MemoryModel(alpha_m=10.0),
            )

    def test_rejects_staggered_releases(self):
        cores = [CorePowerModel(beta=1e-6, lam=3.0, alpha=1.0, s_up=1000.0)] * 2
        with pytest.raises(ValueError, match="common release"):
            solve_common_release_heterogeneous(
                [Task(0, 10, 5), Task(1, 20, 5)], cores, MemoryModel(alpha_m=10.0)
            )

    def test_homogeneous_input_matches_section4(self):
        """With identical cores it must agree with the Section 4 scheme."""
        core = CorePowerModel(beta=1e-6, lam=3.0, alpha=2.0, s_up=1000.0)
        memory = MemoryModel(alpha_m=10.0)
        rng = random.Random(3)
        for _ in range(6):
            tasks = [
                Task(0.0, rng.uniform(10.0, 100.0), rng.uniform(100.0, 4000.0))
                for _ in range(rng.randint(1, 6))
            ]
            het = solve_common_release_heterogeneous(
                tasks, [core] * len(tasks), memory
            )
            hom = solve_common_release(
                TaskSet(tasks), Platform(core, memory)
            )
            assert het.predicted_energy == pytest.approx(
                hom.predicted_energy, rel=1e-6
            )
            assert het.delta == pytest.approx(hom.delta, abs=1e-5)

    def test_distinct_critical_speeds(self):
        """A hot core (big alpha) races; a cool core (alpha=0) stretches."""
        hot = CorePowerModel(beta=1e-6, lam=3.0, alpha=50.0, s_up=1000.0)
        cool = CorePowerModel(beta=1e-6, lam=3.0, alpha=0.0, s_up=1000.0)
        memory = MemoryModel(alpha_m=0.01)  # negligible memory pressure
        tasks = [Task(0.0, 100.0, 1000.0, "on_hot"), Task(0.0, 100.0, 1000.0, "on_cool")]
        sol = solve_common_release_heterogeneous(tasks, [hot, cool], memory)
        assert sol.speeds["on_hot"] > sol.speeds["on_cool"] * 2.0
        assert sol.speeds["on_hot"] == pytest.approx(hot.s_m, rel=0.05)

    def test_mixed_exponents_feasible_and_priced(self):
        """Different lam per core: no closed form, numeric path exercised."""
        cores = [
            CorePowerModel(beta=1e-6, lam=2.2, alpha=3.0, s_up=1000.0),
            CorePowerModel(beta=1e-7, lam=3.0, alpha=1.0, s_up=1500.0),
            CorePowerModel(beta=1e-8, lam=3.5, alpha=8.0, s_up=2000.0),
        ]
        tasks = [
            Task(0.0, 60.0, 2000.0, "a"),
            Task(0.0, 80.0, 3000.0, "b"),
            Task(0.0, 100.0, 1000.0, "c"),
        ]
        memory = MemoryModel(alpha_m=20.0)
        sol = solve_common_release_heterogeneous(tasks, cores, memory)
        sched = sol.schedule()
        validate_schedule(sched, TaskSet(tasks), max_speed=2000.0)
        # Reprice: schedule busy-union energy must match the prediction.
        # Each core has a different model, so account() (homogeneous) does
        # not apply; recompute by hand.
        total = memory.alpha_m * sched.memory_busy_time()
        by_name = {t.name: t for t in tasks}
        core_of = {t.name: c for t, c in zip(sol.tasks, sol.cores)}
        for iv in sched.all_intervals():
            core = core_of[iv.task]
            total += core.active_power(iv.speed) * iv.duration
        assert total == pytest.approx(sol.predicted_energy, rel=1e-6)

    def test_beats_grid_reference(self):
        cores = [
            CorePowerModel(beta=1e-6, lam=3.0, alpha=5.0, s_up=1000.0),
            CorePowerModel(beta=2e-6, lam=3.0, alpha=0.5, s_up=1200.0),
        ]
        tasks = [Task(0.0, 50.0, 2000.0, "a"), Task(0.0, 90.0, 1500.0, "b")]
        memory = MemoryModel(alpha_m=15.0)
        sol = solve_common_release_heterogeneous(tasks, cores, memory)

        # Dense reference over Delta.
        def energy_at(delta):
            import math

            ends = []
            for t, c in zip(tasks, cores):
                ends.append(t.workload / c.s0(t))
            horizon = max(ends)
            busy = horizon - delta
            if busy <= 0:
                return math.inf
            total = memory.alpha_m * busy
            for (t, c), end in zip(zip(tasks, cores), ends):
                finish = min(end, busy)
                speed = t.workload / finish
                if speed > c.s_up:
                    return math.inf
                total += c.execution_energy(t.workload, speed)
            return total

        best = min(energy_at(k * 0.01) for k in range(0, 9000))
        assert sol.predicted_energy <= best * (1.0 + 1e-6)


class TestDiscreteSpeeds:
    def test_a57_levels_grid(self):
        levels = a57_levels(13)
        assert levels[0] == 700.0 and levels[-1] == 1900.0
        assert len(levels) == 13
        with pytest.raises(ValueError):
            a57_levels(1)

    def test_split_preserves_workload_and_window(self):
        interval = ExecutionInterval("t", 2.0, 10.0, 850.0)
        pieces = split_interval(interval, a57_levels())
        assert len(pieces) == 2
        assert pieces[0].start == 2.0 and pieces[-1].end == 10.0
        assert pieces[0].end == pytest.approx(pieces[1].start)
        total = sum(p.workload for p in pieces)
        assert total == pytest.approx(interval.workload, rel=1e-9)

    def test_exact_level_passthrough(self):
        interval = ExecutionInterval("t", 0.0, 5.0, 700.0)
        pieces = split_interval(interval, a57_levels())
        assert len(pieces) == 1
        assert pieces[0].speed == 700.0
        assert pieces[0].end == 5.0

    def test_below_grid_rounds_up(self):
        interval = ExecutionInterval("t", 0.0, 10.0, 100.0)  # w = 1000 kc
        pieces = split_interval(interval, a57_levels())
        assert len(pieces) == 1
        assert pieces[0].speed == 700.0
        assert pieces[0].end == pytest.approx(1000.0 / 700.0)

    def test_above_grid_rejected(self):
        interval = ExecutionInterval("t", 0.0, 1.0, 2500.0)
        with pytest.raises(ValueError, match="exceeds"):
            split_interval(interval, a57_levels())

    @given(speed=st.floats(701.0, 1899.0), duration=st.floats(0.1, 100.0))
    @settings(max_examples=50)
    def test_two_level_mix_property(self, speed, duration):
        interval = ExecutionInterval("t", 0.0, duration, speed)
        pieces = split_interval(interval, a57_levels())
        assert sum(p.workload for p in pieces) == pytest.approx(
            interval.workload, rel=1e-9
        )
        assert pieces[-1].end == pytest.approx(duration, rel=1e-9)
        used = {p.speed for p in pieces}
        levels = a57_levels()
        assert used <= set(levels)
        # Adjacent levels only.
        if len(used) == 2:
            lo, hi = sorted(used)
            assert levels.index(hi) - levels.index(lo) == 1

    def test_quantized_schedule_still_feasible(self):
        core = CorePowerModel(beta=2.53e-7, lam=3.0, alpha=310.0, s_up=1900.0)
        platform = Platform(core, MemoryModel(alpha_m=4000.0))
        tasks = TaskSet(
            [Task(0.0, 40.0, 8000.0, "a"), Task(0.0, 70.0, 15000.0, "b")]
        )
        sol = solve_common_release(tasks, platform)
        quantized = quantize_schedule(sol.schedule(), a57_levels())
        validate_schedule(quantized, tasks, max_speed=1900.0)

    def test_overhead_small_and_shrinking_with_grid(self):
        """The paper's claim: 'no big gap' between continuous and discrete."""
        core = CorePowerModel(beta=2.53e-7, lam=3.0, alpha=310.0, s_up=1900.0)
        platform = Platform(core, MemoryModel(alpha_m=4000.0))
        tasks = TaskSet(
            [Task(0.0, 40.0, 8000.0, "a"), Task(0.0, 70.0, 15000.0, "b"),
             Task(0.0, 100.0, 4000.0, "c")]
        )
        sched = solve_common_release(tasks, platform).schedule()
        coarse = quantization_overhead(sched, a57_levels(5), core)
        fine = quantization_overhead(sched, a57_levels(25), core)
        assert 0.0 <= fine.overhead_ratio <= coarse.overhead_ratio + 1e-12
        assert coarse.overhead_ratio < 0.10  # well under 10% even at 5 levels

    def test_chord_energy_formula(self):
        """Two-level emulation energy equals the chord of P at the mix."""
        core = CorePowerModel(beta=1.0, lam=3.0, alpha=0.0, s_up=100.0)
        levels = [10.0, 20.0]
        interval = ExecutionInterval("t", 0.0, 1.0, 15.0)
        pieces = split_interval(interval, levels)
        energy = sum(core.dynamic_power(p.speed) * p.duration for p in pieces)
        theta = (15.0 - 10.0) / (20.0 - 10.0)
        chord = theta * 20.0**3 + (1 - theta) * 10.0**3
        assert energy == pytest.approx(chord, rel=1e-9)

"""Sample statistics for experiment aggregation.

The paper averages 10 random cases per data point (Section 8.2) without
reporting spread; this module adds the spread so reproduction runs can
state how tight each point is.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = ["SampleStats", "summarize"]

# Two-sided 95% t quantiles for small samples (df = 1..30).
_T95 = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
]


@dataclass(frozen=True)
class SampleStats:
    """Mean / spread of one experiment point across seeds."""

    n: int
    mean: float
    std: float

    @property
    def sem(self) -> float:
        """Standard error of the mean."""
        if self.n < 2:
            return 0.0
        return self.std / math.sqrt(self.n)

    @property
    def ci95_halfwidth(self) -> float:
        """95% confidence half-width (t distribution, normal for n > 31)."""
        if self.n < 2:
            return 0.0
        df = self.n - 1
        t = _T95[df - 1] if df <= len(_T95) else 1.960
        return t * self.sem

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.3f} +/- {self.ci95_halfwidth:.3f} (n={self.n})"


def summarize(samples: Sequence[float]) -> SampleStats:
    """Mean and (sample) standard deviation of ``samples``."""
    n = len(samples)
    if n == 0:
        raise ValueError("cannot summarize an empty sample")
    mean = sum(samples) / n
    if n == 1:
        return SampleStats(1, mean, 0.0)
    var = sum((x - mean) ** 2 for x in samples) / (n - 1)
    return SampleStats(n, mean, math.sqrt(var))

"""Baseline panel: all five online policies on one workload family.

Not a paper exhibit per se, but the summary view that Section 8's story
rests on: SDEM-ON < {MBKPS, MBKP, AVR, race-to-idle} in system energy on
the paper's synthetic workload at the Table 4 defaults.
"""

from __future__ import annotations

from repro.baselines import AvrPolicy, RaceToIdlePolicy, mbkp, mbkps
from repro.core import SdemOnlinePolicy
from repro.experiments import experiment_platform
from repro.sim import simulate
from repro.workloads import synthetic_tasks

from conftest import emit


def test_baseline_panel(benchmark, seeds):
    platform = experiment_platform()

    def run():
        totals = {"SDEM-ON": 0.0, "MBKP": 0.0, "MBKPS": 0.0, "AVR": 0.0, "race": 0.0}
        sleeps = dict.fromkeys(totals, 0.0)
        for seed in range(seeds):
            trace = synthetic_tasks(n=40, max_interarrival=400.0, seed=seed)
            horizon = (
                min(t.release for t in trace),
                max(t.deadline for t in trace),
            )
            policies = {
                "SDEM-ON": SdemOnlinePolicy(platform),
                "MBKP": mbkp(platform),
                "MBKPS": mbkps(platform),
                "AVR": AvrPolicy(platform),
                "race": RaceToIdlePolicy(platform),
            }
            for name, policy in policies.items():
                result = simulate(policy, trace, platform, horizon=horizon)
                totals[name] += result.breakdown.total / seeds
                sleeps[name] += result.breakdown.memory_sleep_time / seeds
        return totals, sleeps

    totals, sleeps = benchmark.pedantic(run, rounds=1, iterations=1)
    base = totals["SDEM-ON"]
    emit(
        "Baseline panel (synthetic, x=400ms, Table 4 stars)",
        (
            f"  {name:<8s} {value / 1000.0:10.2f} mJ "
            f"(x{value / base:4.2f} vs SDEM-ON), memory asleep "
            f"{sleeps[name]:8.1f} ms"
            for name, value in sorted(totals.items(), key=lambda kv: kv[1])
        ),
    )
    for name, value in totals.items():
        if name != "SDEM-ON":
            assert base <= value * (1.0 + 1e-9), name

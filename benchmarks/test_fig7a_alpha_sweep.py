"""Figure 7a: synthetic tasks, (memory static power) x (utilization) grid.

Paper's reading: SDEM-ON improves on MBKPS by ~9.74% on average across
the grid; MBKPS collapses to MBKP at high utilization (x -> 100 ms) while
SDEM-ON keeps its edge at every load level.
"""

from __future__ import annotations

import os

from repro.experiments import ALPHA_M_SWEEP_MW, X_SWEEP_MS, run_fig7a, write_csv

from conftest import emit


def test_fig7a_alpha_sweep(benchmark, seeds, full_scale, results_dir):
    alpha_values = ALPHA_M_SWEEP_MW if full_scale else [1000.0, 4000.0, 8000.0]
    x_values = X_SWEEP_MS if full_scale else [100.0, 400.0, 800.0]
    trace_length = 50 if full_scale else 30

    series = benchmark.pedantic(
        lambda: run_fig7a(
            alpha_m_values=alpha_values,
            x_values=x_values,
            seeds=seeds,
            trace_length=trace_length,
        ),
        rounds=1,
        iterations=1,
    )

    write_csv(series, os.path.join(results_dir, "fig7a.csv"))
    emit(
        "Fig 7a: system energy saving vs MBKP (%) over alpha_m x utilization",
        (
            f"  {p.label:<34s} SDEM-ON {p.sdem_system_saving:7.2f}%  "
            f"MBKPS {p.mbkps_system_saving:7.2f}%  "
            f"improvement {p.sdem_vs_mbkps_improvement:6.2f}%"
            for p in series.points
        ),
    )
    print(
        f"  mean SDEM-ON improvement over MBKPS: "
        f"{series.mean_improvement():.2f}% (paper: 9.74%)"
    )

    for p in series.points:
        assert p.sdem_total < p.mbkps_total
        assert p.sdem_total < p.mbkp_total
    assert series.mean_improvement() > 0.0
    # MBKPS ~ MBKP at the densest x within each alpha_m group.
    n_x = len(x_values)
    for g in range(len(alpha_values)):
        group = series.points[g * n_x : (g + 1) * n_x]
        assert abs(group[0].mbkps_system_saving) < abs(
            group[-1].mbkps_system_saving
        ) + 15.0

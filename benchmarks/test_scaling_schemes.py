"""Runtime scaling of the optimal schemes (Table 1's complexity column).

Empirical growth checks: the Section 4 schemes must stay near-linear
after sorting; the Section 5 DPs are polynomial but steep (O(n^4)/O(n^5)),
so their bench sizes stay small.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.core import (
    solve_agreeable,
    solve_common_release_alpha_nonzero,
    solve_common_release_alpha_zero,
)
from repro.models import CorePowerModel, MemoryModel, Platform, Task, TaskSet

from conftest import emit


def _common(n: int, seed: int = 0) -> TaskSet:
    rng = random.Random(seed)
    return TaskSet(
        Task(0.0, rng.uniform(10.0, 5000.0), rng.uniform(100.0, 5000.0))
        for _ in range(n)
    )


def _agreeable(n: int, seed: int = 0) -> TaskSet:
    rng = random.Random(seed)
    releases = sorted(rng.uniform(0.0, 50.0 * n) for _ in range(n))
    tasks, last_d = [], 0.0
    for r in releases:
        d = max(r + rng.uniform(10.0, 80.0), last_d + 0.5)
        tasks.append(Task(r, d, rng.uniform(200.0, 4000.0)))
        last_d = d
    return TaskSet(tasks)


def _platform(alpha: float) -> Platform:
    return Platform(
        CorePowerModel(beta=1e-6, lam=3.0, alpha=alpha, s_up=5000.0),
        MemoryModel(alpha_m=10.0),
    )


def test_common_release_alpha_zero_scaling(benchmark, full_scale):
    n = 50000 if full_scale else 10000
    tasks = _common(n, seed=1)
    platform = _platform(0.0)
    result = benchmark(
        lambda: solve_common_release_alpha_zero(tasks, platform, method="binary")
    )
    assert result.predicted_energy > 0.0


def test_common_release_alpha_nonzero_scaling(benchmark, full_scale):
    n = 50000 if full_scale else 10000
    tasks = _common(n, seed=2)
    platform = _platform(2.0)
    result = benchmark(
        lambda: solve_common_release_alpha_nonzero(tasks, platform)
    )
    assert result.predicted_energy > 0.0


@pytest.mark.parametrize("alpha", [0.0, 2.0])
def test_agreeable_dp_scaling(benchmark, alpha, full_scale):
    n = 16 if full_scale else 10
    tasks = _agreeable(n, seed=3)
    platform = _platform(alpha)
    solution = benchmark.pedantic(
        lambda: solve_agreeable(tasks, platform), rounds=1, iterations=1
    )
    assert solution.predicted_energy > 0.0


def test_agreeable_dp_growth_profile():
    """Record the DP's wall-clock growth (polynomial, steep)."""
    platform = _platform(0.0)
    rows = []
    for n in (4, 8, 12):
        tasks = _agreeable(n, seed=4)
        start = time.perf_counter()
        solve_agreeable(tasks, platform)
        rows.append((n, (time.perf_counter() - start) * 1000.0))
    emit(
        "Section 5 DP wall-clock growth (alpha=0)",
        (f"  n={n:<3d} {ms:9.1f} ms" for n, ms in rows),
    )
    assert rows[-1][1] >= rows[0][1] * 0.5  # sanity: it ran

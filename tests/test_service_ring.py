"""Property suite for the consistent-hash ring (PR 10).

The sharded service relies on exactly two ring properties, both
documented in :mod:`repro.service.ring`:

* **balance** -- random key populations spread across shards within a
  small factor of the even split, so no worker pool hot-spots;
* **minimal remapping** -- resizing moves only the keys that *must*
  move (those gained by the new shard / orphaned by the removed one),
  so warm worker caches survive a resize.

Plus the determinism that makes routing usable at all: the mapping is a
pure function of (shard ids, vnodes, key), identical across ring
instances and processes.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.service.ring import DEFAULT_VNODES, HashRing

# Key populations: short printable tokens, deduplicated, large enough
# for the balance statistics to mean something.
_keys = st.lists(
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz0123456789_-",
        min_size=1,
        max_size=24,
    ),
    min_size=1,
    max_size=400,
    unique=True,
)


class TestConstruction:
    def test_count_form_builds_contiguous_ids(self):
        ring = HashRing(4)
        assert ring.shard_ids == (0, 1, 2, 3)
        assert len(ring) == 4

    def test_sequence_form_preserves_ids(self):
        ring = HashRing([7, 3, 11])
        assert ring.shard_ids == (7, 3, 11)

    @pytest.mark.parametrize("bad", [0, -1])
    def test_nonpositive_count_rejected(self, bad):
        with pytest.raises(ValueError):
            HashRing(bad)

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError):
            HashRing([])

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            HashRing([1, 2, 1])

    def test_zero_vnodes_rejected(self):
        with pytest.raises(ValueError):
            HashRing(2, vnodes=0)


class TestDeterminism:
    @given(keys=_keys, shards=st.integers(min_value=1, max_value=8))
    @settings(max_examples=50, deadline=None)
    def test_independent_rings_agree(self, keys, shards):
        # Routing is a pure function of the configuration -- this is what
        # lets worker processes and tests recompute the server's mapping.
        a = HashRing(shards)
        b = HashRing(shards)
        assert [a.shard_for(k) for k in keys] == [b.shard_for(k) for k in keys]

    @given(key=st.text(min_size=1, max_size=32))
    @settings(max_examples=100, deadline=None)
    def test_route_in_range(self, key):
        ring = HashRing(5)
        assert ring.shard_for(key) in ring.shard_ids

    def test_single_shard_takes_everything(self):
        ring = HashRing(1)
        assert all(ring.shard_for(f"key-{i}") == 0 for i in range(100))


class TestBalance:
    @given(shards=st.integers(min_value=2, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_uniform_population_within_factor_of_mean(self, shards):
        # 4000 distinct keys against the production vnode count: every
        # shard should hold within 2x of the even split in both
        # directions.  (The expected deviation at 128 vnodes is a few
        # percent; 2x leaves room for unlucky draws without flakiness.)
        keys = [f"platform:{i}" for i in range(4000)]
        counts = HashRing(shards, vnodes=DEFAULT_VNODES).distribution(keys)
        mean = len(keys) / shards
        assert len(counts) == shards
        assert sum(counts.values()) == len(keys)
        for shard_id, count in counts.items():
            assert count > mean / 2, (shard_id, counts)
            assert count < mean * 2, (shard_id, counts)

    def test_distribution_counts_every_shard_even_if_empty(self):
        # distribution() pre-seeds all shard ids so monitoring sees 0s.
        counts = HashRing(8).distribution(["only-one-key"])
        assert set(counts) == set(range(8))
        assert sum(counts.values()) == 1


class TestMinimalRemapping:
    @given(keys=_keys, shards=st.integers(min_value=1, max_value=7))
    @settings(max_examples=50, deadline=None)
    def test_adding_a_shard_only_steals_for_it(self, keys, shards):
        before = HashRing(shards)
        after = HashRing(shards + 1)
        for key in keys:
            old, new = before.shard_for(key), after.shard_for(key)
            # A key either stays put or moves *to the new shard*;
            # nothing reshuffles between the surviving shards.
            assert new == old or new == shards, (key, old, new)

    @given(
        keys=_keys,
        ids=st.lists(
            st.integers(min_value=0, max_value=31),
            min_size=2,
            max_size=8,
            unique=True,
        ),
        data=st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_removing_a_shard_only_moves_its_keys(self, keys, ids, data):
        removed = data.draw(st.sampled_from(ids))
        before = HashRing(ids)
        after = HashRing([i for i in ids if i != removed])
        for key in keys:
            old, new = before.shard_for(key), after.shard_for(key)
            if old == removed:
                assert new != removed
            else:
                # Keys the removed shard never owned keep their owner.
                assert new == old, (key, old, new)

    @given(keys=_keys, shards=st.integers(min_value=2, max_value=6))
    @settings(max_examples=25, deadline=None)
    def test_moved_fraction_is_roughly_one_over_n(self, keys, shards):
        # The remapped share when growing n -> n+1 concentrates around
        # 1/(n+1); assert a generous ceiling so pathological reshuffles
        # (a modulo table moves ~n/(n+1)) would fail loudly.
        before = HashRing(shards)
        after = HashRing(shards + 1)
        moved = sum(
            1 for k in keys if before.shard_for(k) != after.shard_for(k)
        )
        assert moved <= max(4, len(keys) * 3 // (shards + 1))

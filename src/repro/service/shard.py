"""The worker-pool execution tier: shard-affine long-lived solver processes.

One shard = one long-lived :class:`~repro.experiments.parallel.WorkerProcess`
plus the per-shard admission lane the server keeps for it.  The
consistent-hash ring (:mod:`repro.service.ring`) routes every solve by its
*platform fingerprint* -- the same identity the result cache and the
micro-batcher key on -- so one platform's traffic always lands on the
same worker, whose module-level ``BlockArrays``/block-energy memos stay
persistently warm across micro-batches.  The solves themselves are
stateless; affinity exists purely for cache heat.

Cross-shard state discipline (pinned by lint rule ``CON005``): shards
run in separate *processes*, so module-level mutable state in this tier
would silently diverge per shard.  The only sanctioned shared channels
are the content-addressed on-disk
:class:`~repro.experiments.cache.ResultCache` (atomic tmp+rename writes,
safe under concurrent shard workers) and the parent-side per-shard
labelled metrics.  Worker-*local* memos are fine -- each worker owns its
process -- but must carry an explicit pragma.

Byte-identity contract: a worker executes batches through the same
:func:`~repro.service.batcher.execute_batch_requests` core the inline
batcher uses, with the request's numeric backend pinned process-wide
first, so canonical result bytes are identical for 1 shard and N shards,
cold and warm cache (asserted by ``tests/test_service_shard.py`` and the
``service-shard-smoke`` CI job).
"""

from __future__ import annotations

import json
import os
from concurrent.futures import Future
from typing import Dict, List, Optional, Sequence

from repro.core import vectorized
from repro.experiments.cache import ResultCache, platform_fingerprint
from repro.experiments.parallel import WorkerProcess
from repro.service import protocol
from repro.service.batcher import execute_batch_requests
from repro.service.ring import DEFAULT_VNODES, HashRing

__all__ = [
    "ShardPool",
    "shard_execute",
    "shard_memo_stats",
    "shard_route_key",
]


def shard_route_key(request: protocol.SolveRequest) -> str:
    """The ring key of a request: canonical JSON of its platform fingerprint.

    Matches the identity inside :func:`repro.service.batcher.batch_key`
    and the cache's request keys, so every request that could share a
    batch or a cache entry also shares a shard.
    """
    return json.dumps(
        platform_fingerprint(request.platform), sort_keys=True, separators=(",", ":")
    )


# Worker-process-local cache-handle memo: each shard worker opens the
# shared on-disk ResultCache once and reuses the handle across batches;
# the cache it hands out *is* the sanctioned shared path.
# repro-lint: allow[CON005] worker-process-local by construction (one shard per process)
_WORKER_CACHES: Dict[str, ResultCache] = {}


def _worker_cache(root: Optional[str]) -> Optional[ResultCache]:
    if root is None:
        return None
    cache = _WORKER_CACHES.get(root)
    if cache is None:
        cache = ResultCache(root)
        _WORKER_CACHES[root] = cache
    return cache


def shard_execute(
    requests: Sequence[protocol.SolveRequest],
    cache_root: Optional[str],
    backend: str,
) -> List[Dict[str, object]]:
    """Worker-side entry point: execute one compatible micro-batch.

    Runs inside the shard's worker process.  The batch's numeric backend
    is pinned process-wide first (idempotent -- a spawn-context worker
    inherits no programmatic override, and requests may ask for a
    non-default backend), then the batch flows through the exact
    execution core the inline batcher uses.  Returns the plain JSON-able
    outcome dicts of :func:`execute_batch_requests`; the parent turns
    them into wire responses and metrics.
    """
    if backend == "numpy" and not vectorized.HAS_NUMPY:
        # Mirror the inline batcher's guard ('jit' degrades gracefully
        # inside set_backend instead, with backend-scoped cache keys).
        message = (
            "numeric backend 'numpy' requested but numpy is not installed "
            "on this server"
        )
        return [
            {"ok": False, "code": protocol.E_BAD_REQUEST, "message": message}
            for _ in requests
        ]
    if vectorized.get_backend() != backend:
        vectorized.set_backend(backend)
    return execute_batch_requests(list(requests), _worker_cache(cache_root), backend)


def shard_memo_stats() -> Dict[str, float]:
    """Worker-side memo telemetry, flushed into labelled gauges at drain.

    Everything here is numeric so the parent can publish each key as a
    ``repro_shard_<key>{shard="i"}`` gauge without translation.
    """
    return {
        "block_arrays_cached": float(vectorized.block_arrays_cache_size()),
        "worker_pid": float(os.getpid()),
    }


class ShardPool:
    """The ring plus one long-lived worker process per shard.

    Workers are warmed (forked and backend/solver-pinned) at
    construction, before the caller starts an event loop around the pool.
    ``cache`` is the shared on-disk result cache; workers re-open it by
    root path on their side of the process boundary.
    """

    def __init__(
        self,
        shards: int,
        *,
        cache: Optional[ResultCache] = None,
        backend: Optional[str] = None,
        vnodes: int = DEFAULT_VNODES,
    ):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.ring = HashRing(shards, vnodes=vnodes)
        self.cache = cache
        self.workers: List[WorkerProcess] = [
            WorkerProcess(backend=backend) for _ in range(shards)
        ]

    def __len__(self) -> int:
        return len(self.workers)

    def route(self, request: protocol.SolveRequest) -> int:
        """The shard index owning ``request``'s platform fingerprint."""
        return self.ring.shard_for(shard_route_key(request))

    def submit(
        self,
        shard: int,
        requests: Sequence[protocol.SolveRequest],
        backend: str,
    ) -> "Future":
        """Dispatch one formed batch to ``shard``'s worker; resolves to
        the worker's outcome dicts."""
        root = self.cache.root if self.cache is not None else None
        return self.workers[shard].submit(
            shard_execute, list(requests), root, backend
        )

    def memo_stats(self, shard: int) -> Dict[str, float]:
        """Blocking round-trip for one worker's memo telemetry."""
        stats = self.workers[shard].call(shard_memo_stats)
        return dict(stats)

    def shutdown(self, wait: bool = True) -> None:
        for worker in self.workers:
            worker.shutdown(wait=wait)

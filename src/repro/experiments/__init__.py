"""Experiment harness regenerating every table and figure of Section 8.

One module per exhibit; each returns structured results and can emit CSV
plus an ASCII rendering (matplotlib is unavailable offline).  The mapping
from exhibits to modules lives in DESIGN.md's per-experiment index.
"""

from repro.experiments.config import (
    ALPHA_M_SWEEP_MW,
    DEFAULT_ALPHA_M_MW,
    DEFAULT_SEEDS,
    DEFAULT_X_MS,
    DEFAULT_XI_M_MS,
    U_SWEEP,
    X_SWEEP_MS,
    XI_M_SWEEP_MS,
    experiment_platform,
)
from repro.experiments.runner import (
    ComparisonPoint,
    SeriesResult,
    compare_policies,
    render_ascii_chart,
    write_csv,
)
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7a, run_fig7b
from repro.experiments.tables import table1_rows, table3_rows, table4_rows

__all__ = [
    "ALPHA_M_SWEEP_MW",
    "DEFAULT_ALPHA_M_MW",
    "DEFAULT_SEEDS",
    "DEFAULT_X_MS",
    "DEFAULT_XI_M_MS",
    "U_SWEEP",
    "X_SWEEP_MS",
    "XI_M_SWEEP_MS",
    "experiment_platform",
    "ComparisonPoint",
    "SeriesResult",
    "compare_policies",
    "render_ascii_chart",
    "write_csv",
    "run_fig6",
    "run_fig7a",
    "run_fig7b",
    "table1_rows",
    "table3_rows",
    "table4_rows",
]

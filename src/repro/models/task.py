"""Real-time task model (paper Section 3, *Task model*).

A task :class:`Task` is a triple ``(release, deadline, workload)`` plus an
identifier.  The library follows the paper's conventions:

* tasks are independent and access memory during their whole execution;
* offline schemes are non-preemptive and non-migrating -- each task runs on
  its own core in the unbounded-core model;
* the *feasible region* of ``T_i`` is ``[r_i, d_i]`` and the *filled speed*
  ``s_f = w_i / (d_i - r_i)`` is the slowest deadline-feasible speed.

:class:`TaskSet` is an immutable, deadline-sorted container with the
structural predicates the algorithms dispatch on (common release time,
agreeable deadlines) and convenience accessors used by the schedulers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = ["Task", "TaskSet"]


@dataclass(frozen=True, order=False)
class Task:
    """A real-time task with release time, deadline and workload.

    Parameters
    ----------
    release:
        Release time ``r_i`` in ms.  Execution may not start earlier.
    deadline:
        Absolute deadline ``d_i`` in ms, strictly greater than ``release``.
    workload:
        Worst-case execution requirement ``w_i`` in kilocycles, positive.
    name:
        Optional human-readable identifier; auto-derived when omitted.
    """

    release: float
    deadline: float
    workload: float
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not (self.deadline > self.release):
            raise ValueError(
                f"task {self.name or '<anon>'}: deadline {self.deadline} must "
                f"exceed release {self.release}"
            )
        if not (self.workload > 0.0):
            raise ValueError(
                f"task {self.name or '<anon>'}: workload must be positive, "
                f"got {self.workload}"
            )

    @property
    def span(self) -> float:
        """Length ``|I_i| = d_i - r_i`` of the feasible region, in ms."""
        return self.deadline - self.release

    @property
    def filled_speed(self) -> float:
        """Filled speed ``s_f = w_i / |I_i|`` in MHz.

        Executing at the filled speed occupies the entire feasible region;
        when core static power is negligible (``alpha = 0``) this is the
        energy-minimal deadline-feasible speed for an isolated task.
        """
        return self.workload / self.span

    def duration_at(self, speed: float) -> float:
        """Execution time in ms when run at ``speed`` MHz."""
        if speed <= 0.0:
            raise ValueError(f"speed must be positive, got {speed}")
        return self.workload / speed

    def shifted(self, *, release: Optional[float] = None) -> "Task":
        """Return a copy with a new release time (deadline/workload kept).

        The online algorithm of Section 6 resets the release time of every
        unfinished task to the current instant; this helper implements that
        transformation.
        """
        new_release = self.release if release is None else release
        return Task(new_release, self.deadline, self.workload, self.name)

    def with_workload(self, workload: float) -> "Task":
        """Return a copy with updated remaining workload."""
        return Task(self.release, self.deadline, workload, self.name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or "task"
        return (
            f"Task({label}: r={self.release:g}, d={self.deadline:g}, "
            f"w={self.workload:g})"
        )


class TaskSet:
    """An immutable collection of tasks sorted by (deadline, release).

    The sort order matches the indexing conventions of Sections 4 and 5:
    for common-release sets it is the increasing-deadline order; for
    agreeable sets sorting by deadline also sorts by release.
    """

    def __init__(self, tasks: Iterable[Task]):
        ordered = sorted(tasks, key=lambda t: (t.deadline, t.release, t.workload))
        if not ordered:
            raise ValueError("a TaskSet must contain at least one task")
        named: List[Task] = []
        for index, task in enumerate(ordered):
            if task.name:
                named.append(task)
            else:
                named.append(Task(task.release, task.deadline, task.workload, f"T{index + 1}"))
        self._tasks: Tuple[Task, ...] = tuple(named)
        self._energy_signature: Optional[Tuple[Tuple[float, float, float], ...]] = None
        self._signature: Optional[Tuple[Tuple[float, float, float, str], ...]] = None

    @classmethod
    def presorted(cls, tasks: Tuple[Task, ...]) -> "TaskSet":
        """Wrap an already (deadline, release, workload)-sorted, fully
        named task tuple without re-sorting or renaming.

        Hot-path constructor for the online replan loop, which rebuilds a
        relaxed set on every arrival and guarantees the ordering itself.
        """
        if not tasks:
            raise ValueError("a TaskSet must contain at least one task")
        self = cls.__new__(cls)
        self._tasks = tasks
        self._energy_signature = None
        self._signature = None
        return self

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks)

    def __getitem__(self, index: int) -> Task:
        return self._tasks[index]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TaskSet({len(self._tasks)} tasks, span=[{self.earliest_release:g}, {self.latest_deadline:g}])"

    @property
    def tasks(self) -> Tuple[Task, ...]:
        """Deadline-sorted tuple of tasks."""
        return self._tasks

    # -- content signatures (memoization keys) --------------------------------

    def energy_signature(self) -> Tuple[Tuple[float, float, float], ...]:
        """Hashable ``(release, deadline, workload)`` tuple per task.

        Names are excluded: two sets that differ only in naming have
        identical energy landscapes.  Computed once and cached -- the
        block-energy LRU in :mod:`repro.core.blocks` keys on this tuple for
        every evaluation, so it must be O(1) after the first call.
        """
        if self._energy_signature is None:
            self._energy_signature = tuple(
                (t.release, t.deadline, t.workload) for t in self._tasks
            )
        return self._energy_signature

    def signature(self) -> Tuple[Tuple[float, float, float, str], ...]:
        """Like :meth:`energy_signature` but name-qualified.

        Used where cached artifacts carry task identities (e.g. memoized
        :class:`repro.core.blocks.BlockSolution` placements).
        """
        if self._signature is None:
            self._signature = tuple(
                (t.release, t.deadline, t.workload, t.name) for t in self._tasks
            )
        return self._signature

    # -- aggregate properties ------------------------------------------------

    @property
    def earliest_release(self) -> float:
        return min(task.release for task in self._tasks)

    @property
    def latest_deadline(self) -> float:
        return self._tasks[-1].deadline

    @property
    def total_workload(self) -> float:
        return sum(task.workload for task in self._tasks)

    @property
    def max_filled_speed(self) -> float:
        """Largest filled speed across tasks (feasibility lower bound)."""
        return max(task.filled_speed for task in self._tasks)

    # -- structural predicates ------------------------------------------------

    def has_common_release(self, *, tol: float = 1e-9) -> bool:
        """True when all tasks share one release time (Section 4 model)."""
        first = self._tasks[0].release
        return all(abs(task.release - first) <= tol for task in self._tasks)

    def has_common_deadline(self, *, tol: float = 1e-9) -> bool:
        """True when all tasks share one deadline (Theorem 1 model)."""
        last = self._tasks[-1].deadline
        return all(abs(task.deadline - last) <= tol for task in self._tasks)

    def is_agreeable(self) -> bool:
        """True when later releases imply later deadlines (Section 5 model).

        Formally: for any two tasks, ``r_i >= r_j`` implies ``d_i >= d_j``.
        Equivalently, sorting by deadline (our storage order) yields releases
        in non-decreasing order.
        """
        releases = [task.release for task in self._tasks]
        return all(a <= b + 1e-12 for a, b in zip(releases, releases[1:]))

    def is_feasible_at(self, max_speed: float) -> bool:
        """True when every task meets its deadline at ``max_speed``.

        The paper assumes ``s_up >= s_f`` for all tasks w.l.o.g.; this check
        lets callers enforce the assumption on generated workloads.  The
        tolerance is relative: online replanning legitimately produces
        residual jobs whose filled speed equals ``s_up`` up to float
        rounding (a task compressed to the speed cap and then preempted).
        """
        return self.max_filled_speed <= max_speed * (1.0 + 1e-9) + 1e-9

    # -- transformations -------------------------------------------------------

    def subset(self, start: int, stop: int) -> "TaskSet":
        """Return the deadline-ordered slice ``tasks[start:stop]`` as a set.

        Used by the Section 5 dynamic programs, which divide the deadline
        order into consecutive blocks.
        """
        sliced = self._tasks[start:stop]
        if not sliced:
            raise ValueError(f"empty subset [{start}:{stop}]")
        return TaskSet(sliced)

    def normalized_to_zero(self) -> "TaskSet":
        """Shift time so the earliest release is 0 (w.l.o.g. step in Sec. 5.1)."""
        shift = self.earliest_release
        if shift == 0.0:
            return self
        return TaskSet(
            Task(t.release - shift, t.deadline - shift, t.workload, t.name)
            for t in self._tasks
        )

    def with_common_release(self, release: float) -> "TaskSet":
        """Reset every task's release to ``release`` (online re-anchoring).

        Tasks whose deadline would not exceed the new release are rejected;
        the online engine must filter finished/expired tasks first.
        """
        return TaskSet(t.shifted(release=release) for t in self._tasks)

    def deadlines(self) -> List[float]:
        return [task.deadline for task in self._tasks]

    def releases(self) -> List[float]:
        return [task.release for task in self._tasks]

    def workloads(self) -> List[float]:
        return [task.workload for task in self._tasks]

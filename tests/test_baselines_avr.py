"""Tests for the Average Rate (AVR) baseline."""

from __future__ import annotations

import random

import pytest

from repro.baselines import AvrPolicy, mbkp
from repro.models import CorePowerModel, MemoryModel, Platform, Task
from repro.sim import simulate


def make_platform(num_cores=4, alpha=0.0, s_up=1000.0):
    return Platform(
        CorePowerModel(beta=1e-6, lam=3.0, alpha=alpha, s_up=s_up),
        MemoryModel(alpha_m=20.0),
        num_cores=num_cores,
    )


class TestAvrPolicy:
    def test_single_task_runs_at_density(self):
        platform = make_platform()
        tasks = [Task(0.0, 100.0, 1000.0, "a")]
        result = simulate(AvrPolicy(platform), tasks, platform)
        iv = result.schedule.all_intervals()[0]
        assert iv.speed == pytest.approx(10.0)  # density = 1000/100
        assert iv.start == pytest.approx(0.0)
        assert iv.end == pytest.approx(100.0)

    def test_overlapping_windows_add_densities(self):
        """Two same-core jobs with overlapping windows stack their rates."""
        platform = make_platform(num_cores=1)
        tasks = [
            Task(0.0, 100.0, 1000.0, "a"),  # density 10
            Task(0.0, 50.0, 500.0, "b"),  # density 10
        ]
        result = simulate(AvrPolicy(platform), tasks, platform)
        first = sorted(result.schedule.all_intervals(), key=lambda x: x.start)[0]
        # While both windows are open the core runs at 20 MHz, EDF -> b.
        assert first.task == "b"
        assert first.speed == pytest.approx(20.0)

    def test_finished_job_keeps_contributing_density(self):
        """AVR's signature: speed depends on windows, not remaining work."""
        platform = make_platform(num_cores=1)
        tasks = [
            Task(0.0, 100.0, 1000.0, "long"),  # density 10
            Task(0.0, 10.0, 10.0, "blip"),  # density 1, done in ~0.9ms
        ]
        result = simulate(AvrPolicy(platform), tasks, platform)
        pieces = sorted(
            (iv for iv in result.schedule.all_intervals() if iv.task == "long"),
            key=lambda x: x.start,
        )
        # Before t=10 the long job runs at 11 (blip window still open),
        # after t=10 at 10.
        assert pieces[0].speed == pytest.approx(11.0)
        assert pieces[-1].speed == pytest.approx(10.0)

    def test_feasible_on_random_traces(self):
        platform = make_platform(num_cores=8, s_up=2000.0)
        rng = random.Random(5)
        for _ in range(5):
            tasks = []
            t = 0.0
            for i in range(rng.randint(3, 12)):
                t += rng.uniform(0.0, 50.0)
                span = rng.uniform(10.0, 120.0)
                tasks.append(Task(t, t + span, rng.uniform(500.0, 5000.0), f"J{i}"))
            result = simulate(AvrPolicy(platform), tasks, platform)
            assert result.total_energy > 0.0

    def test_avr_never_cheaper_than_oa_on_dynamic_energy(self):
        """OA (MBKP) is energy-optimal per core; AVR can only match or lose
        on dynamic energy for single-core instances."""
        platform = make_platform(num_cores=1, alpha=0.0)
        rng = random.Random(9)
        for _ in range(5):
            tasks = []
            t = 0.0
            for i in range(rng.randint(2, 6)):
                t += rng.uniform(0.0, 40.0)
                span = rng.uniform(20.0, 120.0)
                tasks.append(Task(t, t + span, rng.uniform(500.0, 4000.0), f"J{i}"))
            avr = simulate(AvrPolicy(platform), tasks, platform)
            oa = simulate(mbkp(platform, num_cores=1), tasks, platform)
            assert (
                avr.breakdown.core_dynamic
                >= oa.breakdown.core_dynamic * (1.0 - 1e-6)
            )

    def test_needs_finite_cores(self):
        unbounded = Platform(
            CorePowerModel(beta=1e-6, lam=3.0), MemoryModel(alpha_m=1.0)
        )
        with pytest.raises(ValueError, match="finite"):
            AvrPolicy(unbounded)

    def test_duplicate_names_rejected(self):
        platform = make_platform()
        policy = AvrPolicy(platform)
        policy.on_arrival(0.0, [Task(0.0, 10.0, 10.0, "x")])
        # Same name lands on a different core via round-robin, so collide
        # it intentionally on core 1 of 1.
        single = AvrPolicy(make_platform(num_cores=1))
        single.on_arrival(0.0, [Task(0.0, 10.0, 10.0, "x")])
        with pytest.raises(ValueError, match="duplicate"):
            single.on_arrival(1.0, [Task(1.0, 12.0, 10.0, "x")])

"""Table 1: the solver matrix, demonstrated live, plus scaling evidence.

Regenerates the paper's Table 1 rows (each subproblem's solver and its
complexity class) and empirically checks the growth of the two
common-release schemes: the O(n log n) binary-search variant must scale
visibly better than quadratic on large inputs.
"""

from __future__ import annotations

import random
import time

from repro.core import solve_common_release_alpha_zero
from repro.experiments import table1_rows
from repro.models import CorePowerModel, MemoryModel, Platform, Task, TaskSet

from conftest import emit


def _random_common(n: int, seed: int) -> TaskSet:
    rng = random.Random(seed)
    return TaskSet(
        Task(0.0, rng.uniform(10.0, 5000.0), rng.uniform(100.0, 5000.0))
        for _ in range(n)
    )


def test_table1_rows(benchmark):
    rows = benchmark.pedantic(lambda: table1_rows(n=12), rounds=1, iterations=1)
    emit(
        "Table 1: SDEM subproblems and solutions",
        (
            f"  Sec {row['section']:<4s} {row['task_model']:<20s} "
            f"{row['system_model']:<26s} {row['solution']:<44s} "
            f"({row['measured_ms']} ms on n=12)"
            for row in rows
        ),
    )
    assert len(rows) == 6


def test_binary_search_scaling(benchmark, full_scale):
    """Lemma 1's O(n log n) scheme on a large instance."""
    platform = Platform(
        CorePowerModel(beta=1e-6, lam=3.0, alpha=0.0, s_up=5000.0),
        MemoryModel(alpha_m=10.0),
    )
    n = 20000 if full_scale else 5000
    tasks = _random_common(n, seed=1)
    result = benchmark(
        lambda: solve_common_release_alpha_zero(tasks, platform, method="binary")
    )
    assert result.predicted_energy > 0.0


def test_scan_matches_binary_at_scale():
    platform = Platform(
        CorePowerModel(beta=1e-6, lam=3.0, alpha=0.0, s_up=5000.0),
        MemoryModel(alpha_m=10.0),
    )
    tasks = _random_common(2000, seed=2)
    scan = solve_common_release_alpha_zero(tasks, platform, method="scan")
    binary = solve_common_release_alpha_zero(tasks, platform, method="binary")
    assert abs(scan.predicted_energy - binary.predicted_energy) <= max(
        1e-9, 1e-9 * scan.predicted_energy
    )

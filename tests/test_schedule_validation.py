"""Tests for the feasibility validator."""

from __future__ import annotations

import pytest

from repro.models import Task, TaskSet
from repro.schedule import (
    ExecutionInterval,
    FeasibilityError,
    Schedule,
    is_feasible,
    validate_schedule,
)


@pytest.fixture
def two_tasks():
    return TaskSet([Task(0.0, 10.0, 100.0, "A"), Task(2.0, 20.0, 50.0, "B")])


def sched(*interval_lists):
    return Schedule.from_assignments(interval_lists)


class TestValidateSchedule:
    def test_accepts_valid_schedule(self, two_tasks):
        ok = sched(
            [ExecutionInterval("A", 0.0, 10.0, 10.0)],
            [ExecutionInterval("B", 2.0, 12.0, 5.0)],
        )
        validate_schedule(ok, two_tasks, max_speed=100.0)
        assert is_feasible(ok, two_tasks)

    def test_rejects_unknown_task(self, two_tasks):
        bad = sched([ExecutionInterval("Z", 0.0, 1.0, 1.0)])
        with pytest.raises(FeasibilityError, match="unknown task"):
            validate_schedule(bad, two_tasks)

    def test_rejects_start_before_release(self, two_tasks):
        bad = sched(
            [ExecutionInterval("A", 0.0, 10.0, 10.0)],
            [ExecutionInterval("B", 1.0, 11.0, 5.0)],
        )
        with pytest.raises(FeasibilityError, match="before"):
            validate_schedule(bad, two_tasks)

    def test_rejects_deadline_miss(self, two_tasks):
        bad = sched(
            [ExecutionInterval("A", 0.0, 12.0, 100.0 / 12.0)],
            [ExecutionInterval("B", 2.0, 12.0, 5.0)],
        )
        with pytest.raises(FeasibilityError, match="after"):
            validate_schedule(bad, two_tasks)

    def test_rejects_overspeed(self, two_tasks):
        bad = sched(
            [ExecutionInterval("A", 0.0, 10.0, 10.0)],
            [ExecutionInterval("B", 2.0, 12.0, 5.0)],
        )
        with pytest.raises(FeasibilityError, match="exceeds"):
            validate_schedule(bad, two_tasks, max_speed=7.0)

    def test_rejects_incomplete_workload(self, two_tasks):
        bad = sched(
            [ExecutionInterval("A", 0.0, 5.0, 10.0)],  # only 50 of 100 kc
            [ExecutionInterval("B", 2.0, 12.0, 5.0)],
        )
        with pytest.raises(FeasibilityError, match="executed"):
            validate_schedule(bad, two_tasks)

    def test_rejects_overwork(self, two_tasks):
        bad = sched(
            [ExecutionInterval("A", 0.0, 10.0, 20.0)],  # 200 of 100 kc
            [ExecutionInterval("B", 2.0, 12.0, 5.0)],
        )
        with pytest.raises(FeasibilityError):
            validate_schedule(bad, two_tasks)

    def test_preemption_allowed_by_default(self, two_tasks):
        split = sched(
            [
                ExecutionInterval("A", 0.0, 5.0, 10.0),
                ExecutionInterval("A", 6.0, 10.0, 12.5),
            ],
            [ExecutionInterval("B", 2.0, 12.0, 5.0)],
        )
        validate_schedule(split, two_tasks)

    def test_non_preemptive_mode_rejects_split(self, two_tasks):
        split = sched(
            [
                ExecutionInterval("A", 0.0, 5.0, 10.0),
                ExecutionInterval("A", 6.0, 10.0, 12.5),
            ],
            [ExecutionInterval("B", 2.0, 12.0, 5.0)],
        )
        with pytest.raises(FeasibilityError, match="split"):
            validate_schedule(split, two_tasks, require_non_preemptive=True)

    def test_duplicate_task_names_rejected(self):
        ts = TaskSet([Task(0, 1, 1, "X"), Task(0, 2, 1, "X")])
        empty = sched([ExecutionInterval("X", 0.0, 1.0, 1.0)])
        with pytest.raises(FeasibilityError, match="unique"):
            validate_schedule(empty, ts)

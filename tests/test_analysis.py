"""Tests for the analysis helpers (gantt, stats, reports)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.analysis import (
    SampleStats,
    energy_report,
    render_gantt,
    schedule_summary,
    summarize,
)
from repro.energy import account
from repro.models import CorePowerModel, MemoryModel, Platform
from repro.schedule import ExecutionInterval, Schedule


def iv(task, start, end, speed=100.0):
    return ExecutionInterval(task, start, end, speed)


@pytest.fixture
def schedule():
    return Schedule.from_assignments(
        [[iv("alpha", 0, 4), iv("beta", 6, 8)], [iv("gamma", 2, 5)]]
    )


class TestGantt:
    def test_rows_and_markers(self, schedule):
        art = render_gantt(schedule, horizon=(0.0, 10.0), width=40)
        lines = art.splitlines()
        assert len(lines) == 4  # time + 2 cores + MEM
        assert lines[1].startswith("core 0")
        assert "A" in lines[1] and "B" in lines[1]
        assert "G" in lines[2]
        assert lines[3].startswith("MEM")
        assert "#" in lines[3] and "." in lines[3]

    def test_memory_row_reflects_union(self, schedule):
        art = render_gantt(schedule, horizon=(0.0, 10.0), width=10)
        mem = art.splitlines()[3].split("|")[1]
        # Busy union [0,5] and [6,8] over 10 slots of 1 ms each.
        assert mem[0] == "#" and mem[4] == "#"
        assert mem[9] == "."

    def test_default_horizon(self, schedule):
        art = render_gantt(schedule, width=16)
        assert "time" in art

    def test_rejects_tiny_width(self, schedule):
        with pytest.raises(ValueError):
            render_gantt(schedule, width=4)

    def test_rejects_empty_without_horizon(self):
        empty = Schedule.from_assignments([[]])
        with pytest.raises(ValueError):
            render_gantt(empty)

    def test_empty_core_rendered_idle(self):
        sched = Schedule.from_assignments([[iv("a", 0, 1)], []])
        art = render_gantt(sched, horizon=(0.0, 2.0), width=10)
        assert art.splitlines()[2].split("|")[1] == "." * 10


class TestStats:
    def test_single_sample(self):
        stats = summarize([5.0])
        assert stats.mean == 5.0
        assert stats.std == 0.0
        assert stats.ci95_halfwidth == 0.0

    def test_known_values(self):
        stats = summarize([1.0, 2.0, 3.0])
        assert stats.mean == pytest.approx(2.0)
        assert stats.std == pytest.approx(1.0)
        assert stats.sem == pytest.approx(1.0 / math.sqrt(3.0))
        # df=2 -> t = 4.303
        assert stats.ci95_halfwidth == pytest.approx(4.303 / math.sqrt(3.0))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_large_sample_uses_normal_quantile(self):
        stats = summarize([float(i) for i in range(40)])
        assert stats.ci95_halfwidth == pytest.approx(1.96 * stats.sem, rel=1e-9)

    @given(st.lists(st.floats(-100, 100), min_size=2, max_size=30))
    def test_mean_within_range(self, xs):
        stats = summarize(xs)
        assert min(xs) - 1e-9 <= stats.mean <= max(xs) + 1e-9
        assert stats.std >= 0.0


class TestReports:
    def test_energy_report_shares_sum_to_total(self, schedule):
        platform = Platform(
            CorePowerModel(beta=1e-3, lam=3.0, alpha=5.0),
            MemoryModel(alpha_m=20.0, xi_m=1.0),
        )
        bd = account(schedule, platform, horizon=(0.0, 10.0))
        text = energy_report(bd, label="demo")
        assert "demo" in text
        assert "total" in text
        assert f"{bd.total / 1000.0:.3f}" in text

    def test_energy_report_zero(self):
        from repro.energy.accounting import EnergyBreakdown

        zero = EnergyBreakdown(0, 0, 0, 0, 0, 0, 0)
        assert "zero energy" in energy_report(zero)

    def test_schedule_summary_mentions_everything(self, schedule):
        text = schedule_summary(schedule)
        assert "core 0" in text and "core 1" in text
        assert "alpha" in text and "gamma" in text
        assert "memory" in text

    def test_schedule_summary_idle_core(self):
        sched = Schedule.from_assignments([[iv("a", 0, 1)], []])
        assert "idle" in schedule_summary(sched)

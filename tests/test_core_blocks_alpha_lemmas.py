"""Lemma-level behaviour tests for the Section 5.2 block machinery.

These verify the *structural* claims the paper proves about the
``alpha != 0`` block optimum (Lemmas 5-6, Theorem 4, Table 2), rather
than just the final energies:

* Type-I tasks run exactly at their critical speed ``s_0``; Type-II tasks
  are aligned with the busy interval and run within ``[s_0, s_1]``;
* adding a Type-II task can only lengthen the optimal busy interval
  (Lemma 6);
* Type-I executions are covered by the busy interval (Table 2).
"""

from __future__ import annotations

import random

import pytest

from repro.core import solve_block
from repro.models import CorePowerModel, MemoryModel, Platform, Task, TaskSet


def make_platform(alpha=2.0, alpha_m=10.0, s_up=1000.0):
    return Platform(
        CorePowerModel(beta=1e-6, lam=3.0, alpha=alpha, s_up=s_up),
        MemoryModel(alpha_m=alpha_m),
    )


def classify(block, platform, tasks):
    """Split placements into (type1, type2) per the paper's definition."""
    by_name = {t.name: t for t in tasks}
    type1, type2 = [], []
    for p in block.placements:
        s0 = platform.core.s0(by_name[p.name])
        if abs(p.speed - s0) <= 1e-6 * s0 and (
            p.end < block.end - 1e-6 or p.start > block.start + 1e-6
        ):
            type1.append(p)
        else:
            type2.append(p)
    return type1, type2


def random_agreeable(rng, n, spread=120.0):
    releases = sorted(rng.uniform(0.0, spread) for _ in range(n))
    tasks, last_d = [], 0.0
    for r in releases:
        d = max(r + rng.uniform(15.0, 90.0), last_d + 0.5)
        tasks.append(Task(r, d, rng.uniform(200.0, 4000.0)))
        last_d = d
    return TaskSet(tasks)


class TestTypeClassification:
    def test_speeds_respect_type_bands(self):
        """Table 2: Type-I at s_0; Type-II within [s_0, s_1]."""
        platform = make_platform()
        rng = random.Random(3)
        for _ in range(10):
            tasks = random_agreeable(rng, rng.randint(2, 6))
            block = solve_block(tasks, platform)
            by_name = {t.name: t for t in tasks}
            for p in block.placements:
                task = by_name[p.name]
                s0 = platform.core.s0(task)
                s1 = platform.core.s1(task, platform.memory.alpha_m)
                assert p.speed >= s0 * (1.0 - 1e-5)
                assert p.speed <= max(s1, task.filled_speed) * (1.0 + 1e-5)

    def test_type1_executions_covered_by_busy_interval(self):
        platform = make_platform()
        rng = random.Random(7)
        for _ in range(10):
            tasks = random_agreeable(rng, rng.randint(2, 6))
            block = solve_block(tasks, platform)
            for p in block.placements:
                assert p.start >= block.start - 1e-6
                assert p.end <= block.end + 1e-6

    def test_some_block_has_both_types(self):
        """A slack task inside a tight envelope must become Type-I."""
        platform = make_platform(alpha=2.0, alpha_m=50.0)
        tasks = TaskSet(
            [
                Task(0.0, 12.0, 6000.0, "head"),
                Task(1.0, 150.0, 200.0, "slack"),
                Task(2.0, 152.0, 6000.0, "tail"),
            ]
        )
        block = solve_block(tasks, platform)
        type1, type2 = classify(block, platform, tasks)
        assert any(p.name == "slack" for p in type1)
        assert len(type2) >= 1


class TestLemma6Monotonicity:
    def test_busy_interval_grows_with_more_type2_work(self):
        """Adding an (aligned) task never shrinks the busy interval."""
        platform = make_platform(alpha=2.0, alpha_m=10.0)
        base_tasks = [Task(0.0, 60.0, 3000.0, "a")]
        lengths = []
        for extra in range(4):
            tasks = TaskSet(
                base_tasks
                + [Task(0.0, 60.0, 3000.0, f"x{k}") for k in range(extra)]
            )
            block = solve_block(tasks, platform)
            lengths.append(block.length)
        assert all(b >= a - 1e-6 for a, b in zip(lengths, lengths[1:]))

    def test_heavier_workload_never_shrinks_interval(self):
        platform = make_platform()
        lengths = []
        for scale in (1.0, 1.5, 2.0, 3.0):
            tasks = TaskSet(
                [Task(0.0, 80.0, 1500.0 * scale, "a"), Task(5.0, 90.0, 1000.0 * scale, "b")]
            )
            block = solve_block(tasks, platform)
            lengths.append(block.length)
        assert all(b >= a - 1e-6 for a, b in zip(lengths, lengths[1:]))


class TestSpeedBandsVsMemoryPower:
    def test_type2_speeds_rise_with_alpha_m(self):
        """More memory pressure pushes aligned tasks toward s_1 -> s_up."""
        tasks = TaskSet([Task(0.0, 80.0, 4000.0, "a"), Task(0.0, 90.0, 3000.0, "b")])
        speeds = []
        for alpha_m in (1.0, 10.0, 100.0, 1000.0):
            platform = make_platform(alpha=2.0, alpha_m=alpha_m)
            block = solve_block(tasks, platform)
            speeds.append(max(p.speed for p in block.placements))
        assert all(b >= a - 1e-6 for a, b in zip(speeds, speeds[1:]))

    def test_zero_memory_power_means_everyone_at_critical_speed(self):
        """alpha_m -> 0: the memory doesn't matter; every task relaxes to
        its own critical speed (pure per-core optimum)."""
        platform = make_platform(alpha=2.0, alpha_m=1e-9)
        tasks = TaskSet(
            [Task(0.0, 200.0, 1000.0, "a"), Task(10.0, 300.0, 2000.0, "b")]
        )
        block = solve_block(tasks, platform)
        by_name = {t.name: t for t in tasks}
        for p in block.placements:
            s0 = platform.core.s0(by_name[p.name])
            assert p.speed == pytest.approx(s0, rel=1e-3)

"""``repro.service`` -- a long-lived async solve service over the SDEM stack.

Every solver entry point of the library (the Section 4/7 common-release
schemes, the Section 5 agreeable DP, the SDEM-ON engine and the
MBKP/MBKPS/AVR/race baselines) is reachable here through one versioned
JSON-lines wire protocol, served by an asyncio TCP/stdio server with:

* **admission control** -- a bounded queue with priority lanes
  (interactive vs. sweep), per-request deadlines and HTTP-429-style
  backpressure (:mod:`repro.service.queue`);
* **micro-batching** -- compatible requests (same platform + numeric
  backend) coalesce into one dispatch that prefetches the vectorized
  core's arrays and reuses the experiment engine's on-disk result cache
  (:mod:`repro.service.batcher`);
* **telemetry** -- counters / gauges / histograms rendered as a
  Prometheus-style text page and a JSON snapshot
  (:mod:`repro.service.metrics`);
* **graceful degradation** -- sweep-lane shedding when the queue
  saturates and a clean SIGTERM drain
  (:mod:`repro.service.server`).

The CLI verbs ``repro serve`` and ``repro submit`` (see
:mod:`repro.cli`) wrap :mod:`repro.service.server` and
:mod:`repro.service.client`; docs/SERVICE.md is the operator manual.
"""

from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    SolveRequest,
    canonical_result_bytes,
    error_envelope,
    execute_request,
    request_from_wire,
    resolve_scheme,
)
from repro.service.queue import AdmissionQueue, QueueEntry
from repro.service.batcher import Batcher, form_batches
from repro.service.metrics import MetricsRegistry
from repro.service.server import SolveService
from repro.service.client import ServiceClient, run_demo

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "SolveRequest",
    "canonical_result_bytes",
    "error_envelope",
    "execute_request",
    "request_from_wire",
    "resolve_scheme",
    "AdmissionQueue",
    "QueueEntry",
    "Batcher",
    "form_batches",
    "MetricsRegistry",
    "SolveService",
    "ServiceClient",
    "run_demo",
]

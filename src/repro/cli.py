"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``solve``
    Solve one offline SDEM instance (tasks from CSV/JSON or ``--demo``)
    with the appropriate optimal scheme, print the solution, an ASCII
    Gantt chart and the energy report.

``simulate``
    Replay a trace (file or generated) under an online policy
    (``sdem-on``, ``mbkp``, ``mbkps``, ``avr``, ``race``) and print the
    priced result.

``fig6`` / ``fig7a`` / ``fig7b`` / ``tables``
    Regenerate the paper's exhibits; write CSV (and ASCII charts) into
    ``--out``.  The figure sweeps accept ``--workers N`` (0 = every core)
    to fan work units across processes and cache results on disk under
    ``<out>/.cache`` (``--cache-dir`` overrides, ``--no-cache`` disables);
    outputs are bit-identical for every setting.

``bench``
    Time the engine (serial cold vs parallel cold vs warm cache) on a
    Fig. 6 FFT slice and write ``BENCH_experiments.json``; see
    docs/PERFORMANCE.md for how to read the table.

``cache``
    ``stats`` / ``clear`` for the on-disk experiment result cache.

``serve`` / ``submit``
    Run the async batched solve service (see docs/SERVICE.md) and drive
    it: ``serve`` listens on TCP (JSON-lines protocol, ``--stats`` prints
    a metrics snapshot from a running server instead), ``submit`` sends a
    task file or the concurrent ``--demo`` workload.

All platform knobs (``--alpha-m``, ``--xi-m``, ``--cores``, ...) default
to the paper's Table 4 stars.  Global flags: ``--version`` prints the
library version; ``--json-errors`` turns any CLI failure into a one-line
JSON diagnostic on stderr using the service's error envelope.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from repro.analysis import energy_report, render_gantt, schedule_summary
from repro.baselines import AvrPolicy, RaceToIdlePolicy, mbkp, mbkps
from repro.core import (
    SdemOnlinePolicy,
    solve_agreeable,
    solve_agreeable_fptas,
    solve_common_release,
    solve_common_release_fptas,
    solve_common_release_with_overhead,
)
from repro.core import fptas, vectorized
from repro.energy import account
from repro.experiments import (
    ResultCache,
    default_cache_root,
    run_fig6,
    run_fig7a,
    run_fig7b,
    table1_rows,
    table3_rows,
    table4_rows,
    write_csv,
)
from repro.experiments.bench import (
    BENCH_SLICES,
    check_serial_regression,
    load_trajectory,
    render_bench_huge_n_table,
    render_bench_service_table,
    render_bench_streaming_table,
    render_bench_table,
    run_bench,
    run_bench_huge_n,
    run_bench_service,
    run_bench_streaming,
    write_bench_json,
)
from repro.experiments.runner import render_ascii_chart
from repro.models import Task, TaskSet, paper_platform
from repro.serialization import tasks_from_csv, tasks_from_json
from repro.sim import simulate
from repro.workloads import dspstone_trace, synthetic_tasks
from repro import __version__

__all__ = ["main", "build_parser"]


def _platform_from(args: argparse.Namespace):
    return paper_platform(
        num_cores=args.cores,
        alpha=args.alpha,
        alpha_m=args.alpha_m,
        xi=args.xi,
        xi_m=args.xi_m,
    )


def _add_platform_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cores", type=int, default=8, help="core count (default 8)")
    parser.add_argument(
        "--alpha", type=float, default=310.0, help="core static power mW (default 310)"
    )
    parser.add_argument(
        "--alpha-m", type=float, default=4000.0, dest="alpha_m",
        help="memory static power mW (default 4000 = 4 W)",
    )
    parser.add_argument(
        "--xi", type=float, default=0.0, help="core break-even ms (default 0)"
    )
    parser.add_argument(
        "--xi-m", type=float, default=0.0, dest="xi_m",
        help="memory break-even ms (default 0)",
    )


def _load_tasks(args: argparse.Namespace) -> List[Task]:
    if args.demo:
        return [
            Task(0.0, 40.0, 8000.0, "sensor-fusion"),
            Task(0.0, 70.0, 15000.0, "video-encode"),
            Task(0.0, 100.0, 4000.0, "telemetry"),
        ]
    if not args.tasks:
        raise SystemExit("provide --tasks FILE (CSV or JSON) or --demo")
    with open(args.tasks) as handle:
        text = handle.read()
    if args.tasks.endswith(".json"):
        return tasks_from_json(text)
    import io

    return tasks_from_csv(io.StringIO(text))


def _cmd_solve(args: argparse.Namespace) -> int:
    platform = _platform_from(args)
    tasks = TaskSet(_load_tasks(args))
    horizon = (tasks.earliest_release, tasks.latest_deadline)

    overheads = platform.memory.xi_m > 0.0 or platform.core.xi > 0.0
    use_fptas = fptas.get_solver_tier() == "fptas"
    epsilon = fptas.get_solver_epsilon()
    if tasks.has_common_release():
        if use_fptas:
            solution = solve_common_release_fptas(tasks, platform)
            scheme = f"fptas tier (eps={epsilon:g}, common release)"
        elif overheads:
            solution = solve_common_release_with_overhead(tasks, platform)
            scheme = "Section 7 (overhead-aware common release)"
        else:
            solution = solve_common_release(tasks, platform)
            scheme = "Section 4 (common release)"
        schedule = solution.schedule()
        print(f"scheme: {scheme}")
        print(f"memory sleep Delta = {solution.delta:.3f} ms; "
              f"predicted energy {solution.predicted_energy / 1000.0:.3f} mJ")
    elif tasks.is_agreeable():
        if use_fptas:
            solution = solve_agreeable_fptas(
                tasks, platform, include_transition_overhead=overheads
            )
            scheme = f"fptas tier (eps={epsilon:g}, agreeable)"
        else:
            solution = solve_agreeable(
                tasks, platform, include_transition_overhead=overheads
            )
            scheme = "Section 5 (agreeable DP)"
        schedule = solution.schedule()
        print(f"scheme: {scheme}, {solution.num_blocks} block(s)")
        print(f"predicted energy {solution.predicted_energy / 1000.0:.3f} mJ")
    else:
        raise SystemExit(
            "offline optimal schemes need common-release or agreeable tasks; "
            "use `simulate --policy sdem-on` for general traces"
        )

    breakdown = account(schedule, platform, horizon=horizon)
    print()
    print(render_gantt(schedule, horizon=horizon, width=args.width))
    print()
    print(schedule_summary(schedule))
    print()
    print(energy_report(breakdown, label="accountant (BREAK_EVEN sleeps)"))
    return 0


_POLICIES = {
    "sdem-on": lambda platform: SdemOnlinePolicy(platform),
    "mbkp": lambda platform: mbkp(platform),
    "mbkps": lambda platform: mbkps(platform),
    "avr": lambda platform: AvrPolicy(platform),
    "race": lambda platform: RaceToIdlePolicy(platform),
}


def _cmd_simulate(args: argparse.Namespace) -> int:
    platform = _platform_from(args)
    if args.tasks or args.demo:
        trace = _load_tasks(args)
    elif args.dspstone:
        trace = dspstone_trace(
            args.dspstone,
            utilization_factor=args.u,
            n=args.n,
            seed=args.seed,
            streams=args.cores,
        )
    else:
        trace = synthetic_tasks(
            n=args.n, max_interarrival=args.x, seed=args.seed
        )
    policy = _POLICIES[args.policy](platform)
    result = simulate(policy, trace, platform)
    print(
        f"policy {args.policy}: {len(trace)} tasks, "
        f"peak concurrency {result.peak_concurrency}"
    )
    print(energy_report(result.breakdown, label=args.policy))
    if args.gantt:
        print()
        print(render_gantt(result.schedule, horizon=result.horizon, width=args.width))
    return 0


def _resolve_workers_flag(workers: int):
    """CLI convention: 0 = every core, N >= 1 = pool size."""
    if workers < 0:
        raise SystemExit(
            f"--workers must be >= 0 (0 = every core), got {workers}"
        )
    return None if workers == 0 else workers


def _engine_options(args: argparse.Namespace):
    """``(max_workers, cache)`` from the shared sweep flags."""
    workers = _resolve_workers_flag(args.workers)
    if args.no_cache:
        return workers, None
    root = args.cache_dir or default_cache_root(args.out)
    return workers, ResultCache(root)


def _cmd_fig6(args: argparse.Namespace) -> int:
    os.makedirs(args.out, exist_ok=True)
    workers, cache = _engine_options(args)
    for bench in ("fft", "matmul"):
        series = run_fig6(
            bench,
            seeds=args.seeds,
            instances=args.n,
            max_workers=workers,
            cache=cache,
        )
        write_csv(series, os.path.join(args.out, f"fig6_{bench}.csv"))
        chart = render_ascii_chart(
            f"Fig 6 ({bench}): energy saving vs MBKP (%)",
            [
                (
                    p.label,
                    {
                        "SDEM-ON mem": p.sdem_memory_saving,
                        "MBKPS mem": p.mbkps_memory_saving,
                        "SDEM-ON sys": p.sdem_system_saving,
                        "MBKPS sys": p.mbkps_system_saving,
                    },
                )
                for p in series.points
            ],
        )
        print(chart)
        with open(os.path.join(args.out, f"fig6_{bench}.txt"), "w") as handle:
            handle.write(chart)
    print(f"CSV + ASCII written to {args.out}/")
    return 0


def _cmd_fig7(args: argparse.Namespace, which: str) -> int:
    os.makedirs(args.out, exist_ok=True)
    workers, cache = _engine_options(args)
    runner = run_fig7a if which == "a" else run_fig7b
    series = runner(
        seeds=args.seeds,
        trace_length=args.n,
        max_workers=workers,
        cache=cache,
    )
    write_csv(series, os.path.join(args.out, f"fig7{which}.csv"))
    for p in series.points:
        print(
            f"{p.label:<36s} SDEM-ON {p.sdem_system_saving:7.2f}%  "
            f"MBKPS {p.mbkps_system_saving:7.2f}%  "
            f"improvement {p.sdem_vs_mbkps_improvement:6.2f}%"
        )
    print(f"mean SDEM-ON improvement over MBKPS: {series.mean_improvement():.2f}%")
    print(f"CSV written to {args.out}/fig7{which}.csv")
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    print("Table 1 (solvers, measured):")
    for row in table1_rows(n=args.n):
        print(
            f"  Sec {row['section']:<4s} {row['task_model']:<20s} "
            f"{row['solution']:<44s} {row['measured_ms']} ms "
            f"({row['solver_calls']} solver call(s))"
        )
    print("\nTable 3 (overhead regimes):")
    for row in table3_rows():
        print(
            f"  {row['case']:<22s} Delta = {row['delta_ms']} ms "
            f"({row['expected']})"
        )
    print("\nTable 4 (parameter grid):")
    for row in table4_rows():
        print(
            f"  point {row['point']}: x={row['x_ms']} ms, "
            f"alpha_m={row['alpha_m_w']} W, xi_m={row['xi_m_ms']} ms"
        )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    cache_root = args.cache_dir or default_cache_root(
        os.path.dirname(args.out) or "."
    )
    if args.bench_slice == "huge-n":
        # A global fptas pin narrows the ε sweep to the pinned value; the
        # slice always runs both tiers (the crossover needs the exact leg).
        epsilons = None
        if fptas.get_solver_tier() == "fptas":
            epsilons = [fptas.get_solver_epsilon()]
        report = run_bench_huge_n(quick=args.quick, epsilons=epsilons)
        print(render_bench_huge_n_table(report))
    elif args.bench_slice == "streaming":
        report = run_bench_streaming(quick=args.quick)
        print(render_bench_streaming_table(report))
    elif args.bench_slice == "service":
        report = run_bench_service(quick=args.quick)
        print(render_bench_service_table(report))
    else:
        report = run_bench(
            benchmark=args.benchmark,
            seeds=args.seeds,
            workers=_resolve_workers_flag(args.workers),
            cache_root=cache_root,
            quick=args.quick,
            bench_slice=args.bench_slice,
        )
        print(render_bench_table(report))
    # Gate against the history *before* appending this run to it.
    failure = None
    if args.gate_regression:
        failure = check_serial_regression(report, load_trajectory(args.out))
    write_bench_json(report, args.out)
    print(f"report written to {args.out}")
    if failure is not None:
        print(f"bench regression gate: {failure}", file=sys.stderr)
        return 1
    if args.gate_regression:
        print("bench regression gate: ok (or no comparable prior entry)")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.replay import ArrivalSpec, find_max_sustainable_rate, run_replay

    platform = _platform_from(args)
    if args.mode == "trace":
        if not args.tasks:
            raise SystemExit("trace mode needs --tasks FILE (CSV or JSON)")
        with open(args.tasks) as handle:
            text = handle.read()
        if args.tasks.endswith(".json"):
            trace = tasks_from_json(text)
        else:
            import io

            trace = tasks_from_csv(io.StringIO(text))
        spec = ArrivalSpec(mode="trace", n=len(trace), trace_tasks=tuple(trace))
    else:
        spec = ArrivalSpec(
            mode=args.mode,
            n=args.jobs,
            rate_jobs_s=args.rate,
            seed=args.seed,
            burst_factor=args.burst_factor,
            mean_dwell_ms=args.dwell_ms,
        )

    if args.ramp:
        try:
            rates = [float(r) for r in args.ramp.split(",") if r.strip()]
        except ValueError as exc:
            raise SystemExit(f"--ramp wants comma-separated rates: {exc}")
        if not rates:
            raise SystemExit("--ramp wants at least one rate")
        best, points = find_max_sustainable_rate(
            spec,
            platform,
            rates_jobs_s=rates,
            slo_p99_ms=args.slo_p99,
            max_backlog=args.max_backlog,
        )
        best_text = f"{best:g} jobs/s" if best is not None else "none"
        print(f"max sustainable rate at P99 <= {args.slo_p99:g} ms: {best_text}")
        for point in points:
            print(
                f"  {point.rate_jobs_s:>8.1f} jobs/s: "
                f"wall p99 {point.p99_wall_ms:.3f} ms, shed {point.shed}, "
                f"miss {point.deadline_miss} -> "
                f"{'sustainable' if point.sustainable else 'over SLO'}"
            )
        if args.out:
            payload = {
                "slo_p99_ms": args.slo_p99,
                "max_sustainable_rate_jobs_s": best,
                "ramp": [point.to_wire() for point in points],
            }
            with open(args.out, "w", encoding="utf-8") as handle:
                json_module.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"report written to {args.out}")
        return 0

    report = run_replay(
        spec,
        platform,
        sink=args.sink,
        max_backlog=args.max_backlog,
        host=args.host,
        port=args.port,
        clients=args.clients,
        lane=args.lane,
        scheme=args.scheme,
        time_scale=args.time_scale,
        timeout_ms=args.timeout_ms,
        max_attempts=args.max_attempts,
    )
    print(report.render())
    if args.out:
        payload = report.to_wire(include_records=args.records)
        with open(args.out, "w", encoding="utf-8") as handle:
            json_module.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report written to {args.out}")
    return 0 if report.counts.get("error", 0) == 0 else 1


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.dir or default_cache_root())
    if args.cache_command == "stats":
        print(cache.stats().render())
    else:
        removed = cache.clear()
        print(f"removed {removed} cache entr{'y' if removed == 1 else 'ies'} "
              f"from {cache.root}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    if args.stats:
        from repro.service.client import ServiceClient

        async def fetch():
            async with ServiceClient(args.host, args.port) as client:
                return await client.metrics()

        response = asyncio.run(fetch())
        print(response["result"]["text"], end="")
        return 0

    from repro.service.server import SolveService, run_server

    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or default_cache_root())
    service = SolveService(
        capacity=args.capacity,
        shed_threshold=args.shed_threshold,
        batch_window_ms=args.batch_window_ms,
        max_batch=args.max_batch,
        workers=args.workers,
        shards=args.shards,
        cache=cache,
    )
    if args.stdio:
        asyncio.run(service.serve_stdio())
    else:
        asyncio.run(run_server(service, args.host, args.port))
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service.client import ServiceClient, run_demo

    if args.demo:
        host = None if args.local else args.host
        report = asyncio.run(
            run_demo(
                host,
                args.port,
                n=args.n,
                clients=args.clients,
                capacity=args.capacity,
                shards=args.shards,
                verify=not args.no_verify,
            )
        )
        print(report.render())
        return 0 if report.ok else 1

    tasks = _load_tasks(args)
    wire = {
        "kind": "solve",
        "scheme": args.scheme,
        "lane": args.lane,
        "tasks": [
            {
                "name": t.name,
                "release": t.release,
                "deadline": t.deadline,
                "workload": t.workload,
            }
            for t in tasks
        ],
    }
    if args.numeric is not None:
        wire["numeric"] = args.numeric
    if args.solver is not None:
        wire["solver"] = args.solver
    if args.epsilon is not None:
        wire["epsilon"] = args.epsilon
    if args.timeout_ms is not None:
        wire["timeout_ms"] = args.timeout_ms

    async def send():
        async with ServiceClient(args.host, args.port) as client:
            return await client.request(wire)

    response = asyncio.run(send())
    print(json.dumps(response, indent=2, sort_keys=True))
    return 0 if response.get("ok") else 1


def _cmd_check(args: argparse.Namespace) -> int:
    # Lazy import: the lint pass is cold-path tooling and must not tax
    # `repro solve` startup.
    from repro.lint import baseline as lint_baseline
    from repro.lint import runner as lint_runner

    if args.list_rules:
        from repro.lint.engine import rule_catalogue

        for entry in rule_catalogue():
            print(
                f"{entry['id']}  {entry['family']:<12} "
                f"[{entry['severity']}] {entry['description']}"
            )
        return 0

    try:
        report = lint_runner.run_check(
            args.paths or None,
            rules=args.rules.split(",") if args.rules else None,
            baseline_path=args.baseline,
            update_baseline=args.write_baseline,
        )
    except (ValueError, lint_baseline.BaselineError) as exc:
        print(f"repro check: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(lint_runner.render_json(report))
    else:
        print(lint_runner.render_text(report))
    return report.exit_code


def _add_numeric_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--numeric", choices=["scalar", "numpy", "jit"], default=None,
        help="numeric backend for the solver hot paths "
        "(default: $REPRO_NUMERIC, else numpy when importable; 'jit' uses "
        "the compiled kernels and degrades to numpy/scalar with a warning "
        "when no compiler backend is available)",
    )


def _apply_numeric_flag(args: argparse.Namespace) -> None:
    """Pin the numeric backend process-wide before any command runs.

    Also exported through the environment so pool workers inherit the
    choice under both fork and spawn start methods.
    """
    backend = getattr(args, "numeric", None)
    if backend is None:
        return
    os.environ[vectorized.BACKEND_ENV] = backend
    vectorized.set_backend(backend)


def _add_solver_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--solver", choices=list(fptas.SOLVER_TIERS), default=None,
        help="solver tier: 'exact' (the paper's DPs, default) or 'fptas' "
        "(the (1+eps)-approximate huge-n tier; see docs/PERFORMANCE.md)",
    )
    parser.add_argument(
        "--epsilon", type=float, default=None,
        help="fptas energy tolerance eps in (0, 2] "
        f"(default {fptas.DEFAULT_EPSILON:g}; needs --solver fptas)",
    )


def _apply_solver_flag(args: argparse.Namespace) -> None:
    """Pin the solver tier process-wide, mirroring the numeric flag.

    Exported through the environment so pool workers (and any spawned
    subprocess) inherit the tier; the experiments cache keys on it, so a
    silent tier drift would fragment or -- worse -- alias cache entries.
    """
    tier = getattr(args, "solver", None)
    epsilon = getattr(args, "epsilon", None)
    if tier is None:
        if epsilon is not None:
            raise SystemExit("--epsilon needs --solver fptas")
        return
    if epsilon is not None and tier != "fptas":
        raise SystemExit("--epsilon only applies to --solver fptas")
    try:
        fptas.set_solver_tier(tier, epsilon)
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    os.environ[fptas.TIER_ENV] = tier
    if epsilon is not None:
        os.environ[fptas.EPSILON_ENV] = repr(float(epsilon))


def _add_engine_args(parser: argparse.ArgumentParser) -> None:
    _add_numeric_arg(parser)
    _add_solver_arg(parser)
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the sweep (1 = in-process, 0 = every core)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", dest="no_cache",
        help="skip the on-disk result cache",
    )
    parser.add_argument(
        "--cache-dir", dest="cache_dir", default=None,
        help="result cache directory (default <out>/.cache, "
        "or $REPRO_CACHE_DIR)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SDEM reproduction: solve, simulate, regenerate exhibits",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    parser.add_argument(
        "--json-errors", action="store_true", dest="json_errors",
        help="emit CLI failures as a one-line JSON error envelope on stderr",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_solve = sub.add_parser("solve", help="solve one offline instance")
    p_solve.add_argument("--tasks", help="tasks file (.csv or .json)")
    p_solve.add_argument("--demo", action="store_true", help="use built-in demo tasks")
    p_solve.add_argument("--width", type=int, default=72, help="gantt width")
    _add_platform_args(p_solve)
    _add_numeric_arg(p_solve)
    _add_solver_arg(p_solve)
    p_solve.set_defaults(func=_cmd_solve)

    p_sim = sub.add_parser("simulate", help="replay a trace under a policy")
    p_sim.add_argument("--policy", choices=sorted(_POLICIES), default="sdem-on")
    p_sim.add_argument("--tasks", help="trace file (.csv or .json)")
    p_sim.add_argument("--demo", action="store_true")
    p_sim.add_argument("--dspstone", choices=["fft", "matmul"], help="generate a DSPstone trace")
    p_sim.add_argument("--u", type=float, default=4.0, help="DSPstone utilization factor U")
    p_sim.add_argument("--x", type=float, default=400.0, help="synthetic max inter-arrival ms")
    p_sim.add_argument("--n", type=int, default=50, help="generated trace length")
    p_sim.add_argument("--seed", type=int, default=1)
    p_sim.add_argument("--gantt", action="store_true", help="print a gantt chart")
    p_sim.add_argument("--width", type=int, default=72)
    _add_platform_args(p_sim)
    _add_numeric_arg(p_sim)
    _add_solver_arg(p_sim)
    p_sim.set_defaults(func=_cmd_simulate)

    p6 = sub.add_parser("fig6", help="regenerate Figure 6 (both benchmarks)")
    p6.add_argument("--seeds", type=int, default=10)
    p6.add_argument("--n", type=int, default=64, help="instances per trace")
    p6.add_argument("--out", default="benchmarks/results")
    _add_engine_args(p6)
    p6.set_defaults(func=_cmd_fig6)

    for which in ("a", "b"):
        p7 = sub.add_parser(f"fig7{which}", help=f"regenerate Figure 7{which}")
        p7.add_argument("--seeds", type=int, default=10)
        p7.add_argument("--n", type=int, default=50, help="tasks per trace")
        p7.add_argument("--out", default="benchmarks/results")
        _add_engine_args(p7)
        p7.set_defaults(func=lambda a, w=which: _cmd_fig7(a, w))

    p_tab = sub.add_parser("tables", help="regenerate Tables 1, 3 and 4")
    p_tab.add_argument("--n", type=int, default=12, help="instance size for Table 1")
    _add_solver_arg(p_tab)
    p_tab.set_defaults(func=_cmd_tables)

    p_bench = sub.add_parser(
        "bench", help="time the engine: serial vs parallel vs warm cache"
    )
    p_bench.add_argument(
        "--quick", action="store_true",
        help="small CI smoke slice instead of the full Fig 6 sweep",
    )
    p_bench.add_argument(
        "--benchmark", choices=["fft", "matmul"], default="fft"
    )
    p_bench.add_argument(
        "--slice", choices=list(BENCH_SLICES), default="fft",
        dest="bench_slice",
        help="workload slice: the Fig 6 DSPstone sweep (fft), the Fig 7 "
        "sporadic sweep (synthetic), the exact-vs-fptas crossover "
        "sweep (huge-n), the open-loop replay slice (streaming), or "
        "the sharded-service scaling slice (service)",
    )
    p_bench.add_argument(
        "--seeds", type=int, default=None, help="seeds per point (default 5; 2 with --quick)"
    )
    p_bench.add_argument(
        "--workers", type=int, default=0,
        help="parallel-mode worker processes (0 = every core)",
    )
    p_bench.add_argument(
        "--out", default="BENCH_experiments.json", help="report path"
    )
    p_bench.add_argument(
        "--cache-dir", dest="cache_dir", default=None,
        help="result cache directory for the warm run",
    )
    p_bench.add_argument(
        "--gate-regression", action="store_true",
        help="exit 1 when serial cold regresses >25%% vs the most recent "
        "trajectory entry for the same backend and slice (skipped when "
        "no comparable entry exists)",
    )
    _add_numeric_arg(p_bench)
    _add_solver_arg(p_bench)
    p_bench.set_defaults(func=_cmd_bench)

    p_replay = sub.add_parser(
        "replay",
        help="stream an open-loop arrival process through a replay sink",
    )
    p_replay.add_argument(
        "--mode", choices=["poisson", "mmpp", "trace"], default="poisson",
        help="arrival process (default poisson; trace replays --tasks)",
    )
    p_replay.add_argument(
        "--jobs", type=int, default=2000, help="job count (default 2000)"
    )
    p_replay.add_argument(
        "--rate", type=float, default=80.0,
        help="offered rate in jobs/s (default 80)",
    )
    p_replay.add_argument("--seed", type=int, default=1)
    p_replay.add_argument(
        "--burst-factor", type=float, default=8.0, dest="burst_factor",
        help="mmpp burst-state rate multiplier (default 8)",
    )
    p_replay.add_argument(
        "--dwell-ms", type=float, default=2000.0, dest="dwell_ms",
        help="mmpp mean state dwell time in ms (default 2000)",
    )
    p_replay.add_argument("--tasks", help="trace file for --mode trace")
    p_replay.add_argument(
        "--sink", choices=["inproc", "service"], default="inproc",
        help="in-process SDEM-ON fast-forward (default) or a running "
        "solve server",
    )
    p_replay.add_argument(
        "--max-backlog", type=int, default=64, dest="max_backlog",
        help="in-process admission cap: shed arrivals beyond this backlog",
    )
    p_replay.add_argument("--host", default="127.0.0.1")
    p_replay.add_argument("--port", type=int, default=7070)
    p_replay.add_argument(
        "--clients", type=int, default=4,
        help="service-sink connection pool size",
    )
    p_replay.add_argument(
        "--lane", choices=["interactive", "sweep"], default="interactive"
    )
    p_replay.add_argument("--scheme", default="auto")
    p_replay.add_argument(
        "--time-scale", type=float, default=1.0, dest="time_scale",
        help="service-sink fast-forward factor: virtual ms per wall ms "
        "(default 1 = real time)",
    )
    p_replay.add_argument(
        "--timeout-ms", type=float, default=10_000.0, dest="timeout_ms",
        help="per-request wall-clock timeout (service sink)",
    )
    p_replay.add_argument(
        "--max-attempts", type=int, default=3, dest="max_attempts",
        help="sends per job before a shed becomes terminal (service sink)",
    )
    p_replay.add_argument(
        "--ramp", default=None,
        help="comma-separated offered rates: run the SLO ramp instead of "
        "one replay and report the max sustainable rate",
    )
    p_replay.add_argument(
        "--slo-p99", type=float, default=50.0, dest="slo_p99",
        help="wall P99 SLO in ms for --ramp (default 50)",
    )
    p_replay.add_argument("--out", default=None, help="write a JSON report")
    p_replay.add_argument(
        "--records", action="store_true",
        help="include the canonical per-job table in the JSON report",
    )
    _add_platform_args(p_replay)
    _add_numeric_arg(p_replay)
    _add_solver_arg(p_replay)
    p_replay.set_defaults(func=_cmd_replay)

    p_cache = sub.add_parser(
        "cache", help="inspect or clear the experiment result cache"
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    for name, help_text in (
        ("stats", "entry count, total size, session hit/miss"),
        ("clear", "delete every cache entry"),
    ):
        p_cc = cache_sub.add_parser(name, help=help_text)
        p_cc.add_argument(
            "--dir", default=None,
            help="cache directory (default $REPRO_CACHE_DIR or ./.cache)",
        )
        p_cc.set_defaults(func=_cmd_cache)

    p_serve = sub.add_parser(
        "serve", help="run the async batched solve service (docs/SERVICE.md)"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=7070, help="0 = ephemeral")
    p_serve.add_argument(
        "--capacity", type=int, default=256, help="admission queue bound"
    )
    p_serve.add_argument(
        "--shed-threshold", type=float, default=0.8, dest="shed_threshold",
        help="queue fill fraction where sweep-lane shedding starts",
    )
    p_serve.add_argument(
        "--batch-window-ms", type=float, default=10.0, dest="batch_window_ms",
        help="micro-batch coalescing window",
    )
    p_serve.add_argument(
        "--max-batch", type=int, default=32, dest="max_batch",
        help="requests per micro-batch",
    )
    p_serve.add_argument(
        "--workers", type=int, default=1, help="solver worker threads"
    )
    p_serve.add_argument(
        "--shards", type=int, default=0,
        help="worker-pool shards (0 = inline batcher tier; N>0 routes by "
        "platform fingerprint to N pinned worker processes)",
    )
    p_serve.add_argument(
        "--no-cache", action="store_true", dest="no_cache",
        help="disable the on-disk result cache",
    )
    p_serve.add_argument(
        "--cache-dir", dest="cache_dir", default=None,
        help="result cache directory (default $REPRO_CACHE_DIR or ./.cache)",
    )
    p_serve.add_argument(
        "--stdio", action="store_true",
        help="serve JSON-lines over stdin/stdout instead of TCP",
    )
    p_serve.add_argument(
        "--stats", action="store_true",
        help="print a metrics snapshot from a running server and exit",
    )
    _add_numeric_arg(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="submit solve requests to a running service"
    )
    p_submit.add_argument("--host", default="127.0.0.1")
    p_submit.add_argument("--port", type=int, default=7070)
    p_submit.add_argument("--tasks", help="tasks file (.csv or .json)")
    p_submit.add_argument("--demo", action="store_true",
                          help="drive the N-concurrent-client demo workload")
    p_submit.add_argument(
        "--local", action="store_true",
        help="with --demo: start a private in-process server on an ephemeral port",
    )
    p_submit.add_argument("--n", type=int, default=200,
                          help="demo request count")
    p_submit.add_argument("--clients", type=int, default=8,
                          help="demo concurrent client connections")
    p_submit.add_argument("--capacity", type=int, default=512,
                          help="demo local-server queue bound (and audit threshold)")
    p_submit.add_argument("--shards", type=int, default=0,
                          help="demo local-server worker-pool shards "
                          "(0 = inline batcher tier)")
    p_submit.add_argument(
        "--no-verify", action="store_true", dest="no_verify",
        help="demo: skip the byte-identity check against direct solver calls",
    )
    p_submit.add_argument(
        "--scheme", choices=["auto", "common-release", "common-release-overhead",
                             "agreeable", "sdem-on", "mbkp", "mbkps", "avr", "race"],
        default="auto",
    )
    p_submit.add_argument("--lane", choices=["interactive", "sweep"],
                          default="interactive")
    p_submit.add_argument("--timeout-ms", type=float, default=None,
                          dest="timeout_ms")
    _add_numeric_arg(p_submit)
    _add_solver_arg(p_submit)
    p_submit.set_defaults(func=_cmd_submit)

    p_check = sub.add_parser(
        "check",
        help="run the project's static invariant checks (docs/STATIC_ANALYSIS.md)",
    )
    p_check.add_argument(
        "paths", nargs="*",
        help="files/directories to analyze (default: src/repro and tests)",
    )
    p_check.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="report format (json is the CI artifact schema)",
    )
    p_check.add_argument(
        "--rules", default=None,
        help="comma-separated rule ids or families (e.g. DET001,concurrency)",
    )
    p_check.add_argument(
        "--baseline", default=None,
        help="baseline file (default <root>/.repro-lint-baseline.json)",
    )
    p_check.add_argument(
        "--write-baseline", action="store_true", dest="write_baseline",
        help="accept the current findings as the new baseline",
    )
    p_check.add_argument(
        "--list-rules", action="store_true", dest="list_rules",
        help="print the rule catalogue and exit",
    )
    p_check.set_defaults(func=_cmd_check)

    # Aliased subcommands share parser objects; dedup by id while keeping
    # registration order so --help and error text stay deterministic.
    unique_parsers = list({id(p): p for p in sub.choices.values()}.values())
    for sub_parser in unique_parsers:
        sub_parser.add_argument(
            "--json-errors", action="store_true", dest="json_errors",
            help=argparse.SUPPRESS,
        )

    return parser


def _emit_json_error(code: str, message: str) -> None:
    """The one-line diagnostic of ``--json-errors``: the same error
    envelope the service wire protocol uses."""
    from repro.service.protocol import error_envelope

    print(json.dumps({"error": error_envelope(code, message)}), file=sys.stderr)


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    # Scanned, not parsed: the flag must shape diagnostics even when
    # parsing itself is what fails.
    json_errors = "--json-errors" in argv
    try:
        parser = build_parser()
        args = parser.parse_args(argv)
        _apply_numeric_flag(args)
        _apply_solver_flag(args)
        return args.func(args)
    except SystemExit as exc:
        code = exc.code
        if not json_errors or code in (0, None):
            raise
        message = code if isinstance(code, str) else f"exit status {code}"
        _emit_json_error("CLI_ERROR", message)
        return code if isinstance(code, int) else 2
    except (KeyboardInterrupt, BrokenPipeError):
        raise
    except Exception as exc:
        if not json_errors:
            raise
        _emit_json_error("INTERNAL", f"{type(exc).__name__}: {exc}")
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

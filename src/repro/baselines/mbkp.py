"""MBKP / MBKPS baselines (paper Section 8).

The paper compares SDEM-ON against "the online multi-core DVS scheduling
algorithm proposed in Albers et al. (2007), denoted as MBKP", which
"achieves satisfying results among multiple DVS-cores in terms of energy
saving, but does not consider the static processor power or the static
memory cost".  No pseudo-code is given, so this module implements the
canonical online algorithm from that line of work (DESIGN.md, substitution
S1):

* tasks are assigned to cores on arrival -- round-robin by default, the
  rule the paper itself describes in Section 8.1.2 ("the 9th task will be
  assigned to the first core"); a least-loaded option and Albers et al.'s
  own *Classified Round Robin* (CRR: jobs binned by density into
  power-of-two classes, round-robin within each class) are provided for
  ablations;
* each core runs **Optimal Available**: at every arrival it recomputes the
  YDS-optimal schedule of its remaining work and follows it.  OA stretches
  work to fill all available slack, which maximizes per-core energy
  savings and, exactly as the paper argues, destroys the *common* idle
  time the shared memory needs in order to sleep.

MBKP and MBKPS emit the *same schedule*; they differ only in the memory
accounting policy: MBKP never sleeps the memory, MBKPS sleeps it in every
common idle gap (``SleepPolicy.ALWAYS``), paying a transition overhead per
gap.  An overhead-aware variant (``SleepPolicy.BREAK_EVEN``) is exposed
for the A3 ablation of DESIGN.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Literal, Optional, Sequence, Tuple

from repro.energy.accounting import SleepPolicy
from repro.models.platform import Platform
from repro.models.task import Task
from repro.schedule.timeline import ExecutionInterval
from repro.speed_scaling.online import optimal_available_plan
from repro.speed_scaling.yds import JobPiece

__all__ = ["MbkpPolicy", "mbkp", "mbkps"]

_EPS = 1e-9


@dataclass
class _CoreState:
    jobs: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    #: absolute-time OA segments, consumed front to back
    plan: List[JobPiece] = field(default_factory=list)


class MbkpPolicy:
    """Per-core Optimal Available with a static task-to-core assignment."""

    def __init__(
        self,
        platform: Platform,
        *,
        num_cores: Optional[int] = None,
        assignment: Literal["round_robin", "least_loaded", "crr"] = "round_robin",
        memory_policy: SleepPolicy = SleepPolicy.NEVER,
        core_policy: SleepPolicy = SleepPolicy.BREAK_EVEN,
        clamp_speed: bool = True,
    ):
        count = num_cores if num_cores is not None else platform.num_cores
        if count is None:
            raise ValueError("MBKP needs a finite core count")
        self.platform = platform
        self.memory_policy = memory_policy
        self.core_policy = core_policy
        self.assignment = assignment
        self.clamp_speed = clamp_speed
        self._cores = [_CoreState() for _ in range(count)]
        self._rr_next = 0
        #: CRR state: density class -> next core (one RR counter per class).
        self._crr_next: Dict[int, int] = {}

    # -- OnlinePolicy interface ------------------------------------------------

    def on_arrival(self, now: float, tasks: Sequence[Task]) -> None:
        touched = set()
        for task in tasks:
            index = self._pick_core(task)
            state = self._cores[index]
            if task.name in state.jobs:
                raise ValueError(f"duplicate online task name {task.name!r}")
            state.jobs[task.name] = (task.deadline, task.workload)
            touched.add(index)
        for index in touched:
            self._replan(index, now)

    def run_until(
        self, now: float, until: float
    ) -> List[Tuple[int, ExecutionInterval]]:
        out: List[Tuple[int, ExecutionInterval]] = []
        for index, state in enumerate(self._cores):
            plan = state.plan
            if not plan or plan[0].start >= until + _EPS:
                continue  # plans are chronological: nothing in the window
            kept: List[JobPiece] = []
            for pos, piece in enumerate(plan):
                if piece.start >= until + _EPS:
                    # Everything from here on lies after the window.
                    kept.extend(plan[pos:])
                    break
                piece_end = piece.end
                if piece_end <= now + _EPS:
                    continue  # already consumed
                piece_start = piece.start
                start = piece_start if piece_start > now else now
                end = piece_end if piece_end < until else until
                if end > start + _EPS:
                    out.append(
                        (index, ExecutionInterval(piece.name, start, end, piece.speed))
                    )
                    deadline, remaining = state.jobs[piece.name]
                    remaining -= piece.speed * (end - start)
                    if remaining <= _EPS:
                        del state.jobs[piece.name]
                    else:
                        state.jobs[piece.name] = (deadline, remaining)
                if piece_end > until + _EPS:
                    kept.append(piece)
            state.plan = kept
        return out

    # -- internals -----------------------------------------------------------------

    def _pick_core(self, task: Task) -> int:
        if self.assignment == "round_robin":
            index = self._rr_next
            self._rr_next = (self._rr_next + 1) % len(self._cores)
            return index
        if self.assignment == "least_loaded":
            loads = [
                sum(w for _, w in state.jobs.values()) for state in self._cores
            ]
            return min(range(len(loads)), key=loads.__getitem__)
        if self.assignment == "crr":
            # Classified Round Robin (Albers et al. 2007): bin by density
            # into power-of-two classes, round-robin within each class so
            # similar-intensity jobs spread evenly across cores.
            density = task.filled_speed
            klass = math.floor(math.log2(density)) if density > 0.0 else 0
            index = self._crr_next.get(klass, 0)
            self._crr_next[klass] = (index + 1) % len(self._cores)
            return index
        raise ValueError(f"unknown assignment {self.assignment!r}")

    def _replan(self, index: int, now: float) -> None:
        state = self._cores[index]
        live = [
            (name, deadline, remaining)
            for name, (deadline, remaining) in state.jobs.items()
            if remaining > _EPS
        ]
        if not live:
            state.plan = []
            return
        segments = optimal_available_plan(live, now)
        if self.clamp_speed:
            segments = self._clamp(segments, live, now)
        state.plan = segments

    def _clamp(
        self,
        segments: List[JobPiece],
        live: List[Tuple[str, float, float]],
        now: float,
    ) -> List[JobPiece]:
        """Clamp OA speeds at ``s_up`` (EDF order preserved).

        OA's unconstrained speeds can exceed the hardware limit when one
        core is overloaded; clamping keeps the plan executable.  Deadline
        misses, if the overload is real, surface in schedule validation.
        """
        s_up = self.platform.core.s_up
        if all(piece.speed <= s_up * (1.0 + 1e-12) for piece in segments):
            return segments
        clamped: List[JobPiece] = []
        t = now
        for piece in segments:
            speed = min(piece.speed, s_up)
            duration = piece.workload / speed
            clamped.append(JobPiece(piece.name, t, t + duration, speed))
            t += duration
        return clamped


def mbkp(platform: Platform, *, num_cores: Optional[int] = None) -> MbkpPolicy:
    """The original MBKP: memory never sleeps."""
    return MbkpPolicy(
        platform, num_cores=num_cores, memory_policy=SleepPolicy.NEVER
    )


def mbkps(
    platform: Platform,
    *,
    num_cores: Optional[int] = None,
    break_even_guard: bool = False,
) -> MbkpPolicy:
    """MBKPS: MBKP plus naive sleeping in every common idle gap.

    ``break_even_guard=True`` is the DESIGN.md A3 ablation: sleep only in
    gaps that amortize the transition overhead.
    """
    policy = SleepPolicy.BREAK_EVEN if break_even_guard else SleepPolicy.ALWAYS
    return MbkpPolicy(platform, num_cores=num_cores, memory_policy=policy)

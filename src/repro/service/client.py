"""Async client for the solve service, plus the end-to-end demo driver.

:class:`ServiceClient` speaks the JSON-lines protocol over one TCP
connection and supports *pipelining*: any number of requests may be in
flight, responses are correlated by ``id`` (the server may answer out of
order, e.g. when an interactive solve overtakes queued sweep work).

:func:`run_demo` is the subsystem's acceptance harness, shared by
``repro submit --demo``, the service tests and the CI smoke job: it fires
N concurrent solve requests across several schemes, lanes and both
numeric backends, verifies every response byte-identical against a direct
in-process solver call, and audits the service invariants (bounded queue,
micro-batching engaged, cache hit rate) from the metrics snapshot.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core import vectorized
from repro.experiments.cache import ResultCache
from repro.service import protocol
from repro.service.server import SolveService
from repro.workloads.synthetic import synthetic_tasks

__all__ = [
    "RETRYABLE_CODES",
    "RequestTimedOut",
    "ServiceClient",
    "DemoReport",
    "demo_wire_requests",
    "run_demo",
]


class RequestTimedOut(TimeoutError):
    """A request exceeded its per-request wall-clock timeout.

    Raised by :meth:`ServiceClient.request` when ``timeout_ms`` elapses
    before the correlated response arrives.  The pending future is
    cleaned up, so a late response for the same id is silently dropped
    instead of leaking into ``_pending`` forever.
    """


#: Error codes that signal transient backpressure: the server is healthy
#: but declined the request, and suggested a ``retry_after_ms``.
RETRYABLE_CODES = (protocol.E_SHEDDING, protocol.E_QUEUE_FULL)


class ServiceClient:
    """One pipelined JSON-lines connection to a solve server."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7070,
        *,
        retry_seed: Optional[int] = None,
    ):
        self.host = host
        self.port = port
        #: Jitter source for retry backoff.  Unseeded by default -- the
        #: whole point is that concurrent clients desynchronize -- but a
        #: ``retry_seed`` pins the schedule for deterministic tests.
        self._retry_rng = random.Random(retry_seed)
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._pending: Dict[str, asyncio.Future] = {}
        self._seq = 0
        #: Undecodable frames dropped by the read loop.  The client keeps
        #: reading (one garbled line must not kill pipelined requests),
        #: but the drop stays observable instead of silent.
        self.dropped_frames = 0

    async def connect(self) -> "ServiceClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        self._reader_task = asyncio.create_task(self._read_loop())
        return self

    async def close(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
        if self._reader_task is not None:
            await self._reader_task
            self._reader_task = None

    async def __aenter__(self) -> "ServiceClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- wire plumbing -------------------------------------------------------

    def _next_id(self) -> str:
        self._seq += 1
        return f"c{self._seq}"

    async def _read_loop(self) -> None:
        assert self._reader is not None
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    response = protocol.decode_line(line)
                except protocol.ProtocolError:
                    self.dropped_frames += 1
                    continue
                future = self._pending.pop(str(response.get("id")), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        finally:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        ConnectionError("server closed the connection")
                    )
            self._pending.clear()

    async def request(
        self,
        wire: Dict[str, object],
        *,
        timeout_ms: Optional[float] = None,
    ) -> Dict[str, object]:
        """Send one request object and await its correlated response.

        ``timeout_ms`` bounds the wall-clock wait for the response;
        ``None`` (the default) waits forever, preserving the historical
        behaviour.  On expiry the pending entry is removed (a late
        response is dropped by the read loop) and :class:`RequestTimedOut`
        is raised, so a hung or draining server cannot wedge a replay.
        """
        if self._writer is None:
            raise RuntimeError("client is not connected; call connect() first")
        wire = dict(wire)
        wire.setdefault("v", protocol.PROTOCOL_VERSION)
        if "id" not in wire:
            wire["id"] = self._next_id()
        request_id = str(wire["id"])
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        self._writer.write(protocol.encode_line(wire))
        await self._writer.drain()
        if timeout_ms is None:
            return await future
        try:
            return await asyncio.wait_for(future, timeout_ms / 1000.0)
        except asyncio.TimeoutError:
            self._pending.pop(request_id, None)
            raise RequestTimedOut(
                f"request {request_id} timed out after {timeout_ms:g} ms"
            ) from None

    async def request_with_retry(
        self,
        wire: Dict[str, object],
        *,
        timeout_ms: Optional[float] = None,
        max_attempts: int = 3,
        backoff_cap_ms: float = 1000.0,
        jitter: float = 0.5,
        on_backpressure=None,
    ) -> Dict[str, object]:
        """Send a request, honoring shed/queue-full backpressure.

        When the server answers with a retryable error (``SHEDDING`` or
        ``QUEUE_FULL``) the client sleeps for the server-suggested
        ``retry_after_ms`` -- capped at ``backoff_cap_ms`` so an
        occupancy-scaled hint cannot stall an open-loop replay -- and
        resends, up to ``max_attempts`` total sends.  The sleep is
        multiplied by a uniform factor in ``[1 - jitter, 1 + jitter]``
        (then capped): without jitter, every client that a full shard
        rejected in the same window receives the same occupancy-scaled
        hint and retries in lockstep, re-colliding forever under
        synchronized open-loop load.  Sharded servers stamp the rejecting
        shard into the error envelope (``error["shard"]``), so terminal
        sheds remain attributable per shard.  The final response is
        returned as-is (possibly still the error) so callers can count
        them.  ``on_backpressure(code, delay_ms)`` is invoked before each
        backoff sleep, for shed-retry accounting.
        """
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {jitter}")
        response: Dict[str, object] = {}
        for attempt in range(max_attempts):
            response = await self.request(wire, timeout_ms=timeout_ms)
            if response.get("ok"):
                return response
            error = response.get("error")
            code = error.get("code") if isinstance(error, dict) else None
            if code not in RETRYABLE_CODES or attempt == max_attempts - 1:
                return response
            suggested = error.get("retry_after_ms") if isinstance(error, dict) else None
            delay_ms = float(suggested) if suggested is not None else backoff_cap_ms
            if jitter > 0.0:
                delay_ms *= 1.0 + jitter * (2.0 * self._retry_rng.random() - 1.0)
            delay_ms = min(delay_ms, backoff_cap_ms)
            if on_backpressure is not None:
                on_backpressure(str(code), delay_ms)
            await asyncio.sleep(delay_ms / 1000.0)
        return response

    # -- convenience verbs ---------------------------------------------------

    async def solve(self, **fields) -> Dict[str, object]:
        wire = {"kind": "solve"}
        wire.update(fields)
        return await self.request(wire)

    async def ping(self) -> Dict[str, object]:
        return await self.request({"kind": "ping"})

    async def metrics(self) -> Dict[str, object]:
        return await self.request({"kind": "metrics"})

    async def cancel(self, target: str) -> Dict[str, object]:
        return await self.request({"kind": "cancel", "target": target})

    async def drain(self) -> Dict[str, object]:
        return await self.request({"kind": "drain"})


# ---------------------------------------------------------------------------
# Demo workload generation
# ---------------------------------------------------------------------------

#: Scheme rotation of the demo: three offline schemes and two online
#: policies, so batching, caching and the full dispatch matrix all engage.
DEMO_SCHEMES = ("auto", "agreeable", "sdem-on", "common-release", "mbkps")


def _demo_tasks(scheme: str, instance: int) -> List[Dict[str, float]]:
    """A small deterministic task set fitting ``scheme``'s preconditions."""
    rng = random.Random(1000 + instance)
    n = rng.randint(3, 6)
    if scheme in ("auto", "common-release", "common-release-overhead"):
        # Common release at 0, spread deadlines.
        deadline = 0.0
        out = []
        for i in range(n):
            deadline += rng.uniform(20.0, 60.0)
            out.append(
                {
                    "name": f"cr{instance}-{i}",
                    "release": 0.0,
                    "deadline": deadline,
                    "workload": rng.uniform(2000.0, 9000.0),
                }
            )
        return out
    if scheme == "agreeable":
        release, deadline, out = 0.0, 30.0, []
        for i in range(n):
            release += rng.uniform(0.0, 25.0)
            deadline = max(deadline + rng.uniform(5.0, 40.0), release + 10.0)
            out.append(
                {
                    "name": f"ag{instance}-{i}",
                    "release": release,
                    "deadline": deadline,
                    "workload": rng.uniform(2000.0, 8000.0),
                }
            )
        return out
    # Online policies replay a Section 8.1.2 synthetic sporadic trace.
    return [
        {
            "name": t.name or f"sp{instance}-{i}",
            "release": t.release,
            "deadline": t.deadline,
            "workload": t.workload,
        }
        for i, t in enumerate(
            synthetic_tasks(n=n + 4, max_interarrival=120.0, seed=instance)
        )
    ]


def demo_wire_requests(
    n: int = 200, *, unique: Optional[int] = None, seed: int = 0
) -> List[Dict[str, object]]:
    """``n`` solve requests cycling schemes, lanes, backends and instances.

    ``unique`` bounds the number of distinct instances (default ``n // 4``),
    so later repetitions hit the result cache.  Backends cycle through
    every backend usable in this process (scalar, plus numpy and jit when
    importable/compilable).
    """
    if unique is None:
        unique = max(1, n // 4)
    backends: Tuple[str, ...] = vectorized.available_backends()
    platforms = (
        None,  # paper defaults
        {"alpha_m": 2000.0, "xi_m": 25.0},
    )
    rng = random.Random(seed)
    requests: List[Dict[str, object]] = []
    for i in range(n):
        instance = i % unique
        scheme = DEMO_SCHEMES[instance % len(DEMO_SCHEMES)]
        wire: Dict[str, object] = {
            "kind": "solve",
            "id": f"demo-{i}",
            "scheme": scheme,
            "lane": "sweep" if rng.random() < 0.25 else "interactive",
            "numeric": backends[instance % len(backends)],
            "tasks": _demo_tasks(scheme, instance),
        }
        platform = platforms[instance % len(platforms)]
        if platform is not None:
            wire["platform"] = platform
        requests.append(wire)
    return requests


def expected_result(wire: Dict[str, object]) -> Dict[str, object]:
    """Direct in-process execution of a wire request (the byte-identity
    reference), with the request's backend pinned around the call."""
    request = protocol.request_from_wire(wire)
    previous = vectorized.get_backend_override()
    if request.numeric is not None:
        vectorized.set_backend(request.numeric)
    try:
        return protocol.execute_request(request)
    finally:
        vectorized.set_backend(previous)


# ---------------------------------------------------------------------------
# The end-to-end demo
# ---------------------------------------------------------------------------


@dataclass
class DemoReport:
    """Outcome of one :func:`run_demo` run, with the audited invariants."""

    total: int
    succeeded: int
    mismatched: List[str] = field(default_factory=list)
    failed: List[Tuple[str, str]] = field(default_factory=list)
    schemes_seen: List[str] = field(default_factory=list)
    batch_size_max: float = 0.0
    cache_hits: float = 0.0
    cache_misses: float = 0.0
    queue_depth_peak: float = 0.0
    queue_capacity: int = 0
    metrics_text: str = ""
    snapshot: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """The acceptance gate: every response correct and every service
        invariant (bounded queue, batching engaged, cache hit rate) held."""
        return (
            self.succeeded == self.total
            and not self.mismatched
            and not self.failed
            and len(set(self.schemes_seen)) >= 3
            and self.batch_size_max > 1.0
            and self.cache_hits > 0.0
            and self.queue_depth_peak <= self.queue_capacity
        )

    def render(self) -> str:
        lines = [
            f"requests:        {self.succeeded}/{self.total} ok "
            f"({len(self.mismatched)} mismatched, {len(self.failed)} failed)",
            f"schemes:         {', '.join(sorted(set(self.schemes_seen)))}",
            f"max batch size:  {self.batch_size_max:g}",
            f"cache:           {self.cache_hits:g} hit(s), "
            f"{self.cache_misses:g} miss(es)",
            f"queue peak:      {self.queue_depth_peak:g} "
            f"(capacity {self.queue_capacity})",
            f"verdict:         {'OK' if self.ok else 'FAILED'}",
        ]
        for request_id, envelope in self.failed[:5]:
            lines.append(f"  failed {request_id}: {envelope}")
        for request_id in self.mismatched[:5]:
            lines.append(f"  mismatched {request_id}")
        return "\n".join(lines)


async def run_demo(
    host: Optional[str] = None,
    port: Optional[int] = None,
    *,
    n: int = 200,
    clients: int = 8,
    capacity: int = 512,
    cache_dir: Optional[str] = None,
    verify: bool = True,
    seed: int = 0,
    shards: int = 0,
) -> DemoReport:
    """Fire ``n`` concurrent mixed solve requests and audit the results.

    With ``host=None`` a local :class:`SolveService` is started on an
    ephemeral port (the full TCP path, not in-process shortcuts) and
    drained afterwards; otherwise an already-running server is targeted
    and ``capacity`` is only used as the queue-bound audit threshold.
    ``shards`` selects the local server's execution tier (0 = inline
    batcher, N = sharded worker pool); responses are verified
    byte-identical against direct execution either way.
    """
    service: Optional[SolveService] = None
    server = None
    if host is None:
        cache = ResultCache(cache_dir) if cache_dir is not None else None
        if cache is None:
            import tempfile

            cache = ResultCache(tempfile.mkdtemp(prefix="repro-service-demo-"))
        service = SolveService(capacity=capacity, cache=cache, shards=shards)
        server = await service.serve_tcp("127.0.0.1", 0)
        host, port = server.sockets[0].getsockname()[:2]
    assert port is not None

    requests = demo_wire_requests(n, seed=seed)
    report = DemoReport(total=len(requests), succeeded=0, queue_capacity=capacity)

    pool = [ServiceClient(host, port) for _ in range(max(1, clients))]
    await asyncio.gather(*(c.connect() for c in pool))
    try:
        responses = await asyncio.gather(
            *(
                pool[i % len(pool)].request(wire)
                for i, wire in enumerate(requests)
            )
        )
        for wire, response in zip(requests, responses):
            request_id = str(wire["id"])
            if not response.get("ok"):
                report.failed.append((request_id, str(response.get("error"))))
                continue
            result = response["result"]
            report.succeeded += 1
            report.schemes_seen.append(str(result.get("scheme")))
            if verify:
                expected = expected_result(wire)
                if protocol.canonical_result_bytes(
                    result
                ) != protocol.canonical_result_bytes(expected):
                    report.mismatched.append(request_id)
        metrics_response = await pool[0].metrics()
        payload = metrics_response["result"]
        report.metrics_text = payload["text"]
        report.snapshot = payload["snapshot"]
    finally:
        await asyncio.gather(*(c.close() for c in pool))
        if service is not None:
            server.close()
            await server.wait_closed()
            await service.drain()

    snapshot = report.snapshot
    report.batch_size_max = snapshot.get("repro_batch_size", {}).get("max", 0.0)
    report.cache_hits = snapshot.get("repro_cache_hits_total", {}).get("value", 0.0)
    report.cache_misses = snapshot.get("repro_cache_misses_total", {}).get(
        "value", 0.0
    )
    report.queue_depth_peak = snapshot.get("repro_queue_depth", {}).get("peak", 0.0)
    return report

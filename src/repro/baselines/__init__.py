"""Baseline online schedulers from the paper's evaluation (Section 8).

* :class:`MbkpPolicy` -- the multi-core DVS baseline (per-core Optimal
  Available on a round-robin assignment); the memory never sleeps.
* :func:`mbkps` -- MBKPS: the same schedule, but the memory is put to
  sleep in *every* common idle gap (paying a transition overhead each
  time), exactly the naive modification the paper compares against.
* :class:`RaceToIdlePolicy` -- run everything at ``s_up`` on release and
  sleep; the "race to idle" end of the spectrum the title refers to.
"""

from repro.baselines.mbkp import MbkpPolicy, mbkp, mbkps
from repro.baselines.race_to_idle import RaceToIdlePolicy
from repro.baselines.avr import AvrPolicy
from repro.baselines.quantized import QuantizedPolicy

__all__ = [
    "MbkpPolicy",
    "mbkp",
    "mbkps",
    "RaceToIdlePolicy",
    "AvrPolicy",
    "QuantizedPolicy",
]

"""Micro-batching dispatcher: coalesce compatible solves, reuse the cache.

Requests popped from the admission queue are grouped into *micro-batches*
of compatible requests -- same platform fingerprint, same numeric backend
-- in arrival order.  One batch is one dispatch to the persistent worker
pool, where it:

1. prices every request against the experiment engine's on-disk
   :class:`~repro.experiments.cache.ResultCache` (keys from
   :func:`repro.experiments.cache.service_request_key`, so entries are
   shared with any other server pointed at the same directory);
2. warms the vectorized numeric core for all cache-missing task sets in one
   :func:`repro.core.vectorized.prefetch_block_arrays` pass;
3. solves the misses via :func:`repro.service.protocol.execute_request`
   and writes their results back to the cache.

Oversized compatibility groups are split with the experiment engine's
:func:`repro.experiments.parallel.chunk_evenly`, the same granularity rule
the experiment engine's process pool uses.

Backend pinning: the numeric backend is process-wide state
(:func:`repro.core.vectorized.set_backend`), so a batch that needs a
backend other than the process default takes an *exclusive* lock while
default-backend batches run under a shared lock.  With the default
single-worker pool (solver work is GIL-bound; extra threads buy nothing)
the lock never contends, but it keeps multi-worker configurations
byte-deterministic too.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core import vectorized
from repro.experiments.cache import (
    ResultCache,
    platform_fingerprint,
    service_request_key,
)
from repro.experiments.parallel import chunk_evenly
from repro.service import protocol
from repro.service.metrics import (
    MetricsRegistry,
    scheme_energy_counter,
    service_metrics,
)
from repro.service.queue import QueueEntry

__all__ = [
    "Batcher",
    "batch_key",
    "execute_batch_requests",
    "finalize_outcomes",
    "form_batches",
]


def resolve_numeric(request: protocol.SolveRequest) -> str:
    """The backend this request will be solved under."""
    return request.numeric if request.numeric is not None else vectorized.get_backend()


def batch_key(request: protocol.SolveRequest) -> str:
    """Compatibility key: requests sharing it may coalesce into one batch.

    The solver tier (and its ε) is part of the key so batches stay
    tier-homogeneous: a batch's provenance and cache traffic then describe
    one tier, and exact requests never wait behind slow fptas grids.
    """
    payload = {
        "platform": platform_fingerprint(request.platform),
        "numeric": resolve_numeric(request),
        "solver": request.solver,
    }
    if request.solver == "fptas":
        payload["epsilon"] = request.epsilon
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def form_batches(
    entries: Sequence[QueueEntry], max_batch: int
) -> List[List[QueueEntry]]:
    """Group entries into compatible micro-batches, preserving arrival order.

    Groups larger than ``max_batch`` are split into evenly sized chunks
    (two batches of 25 beat 32 + 18 for tail latency).
    """
    if max_batch < 1:
        raise ValueError(f"max_batch must be >= 1, got {max_batch}")
    groups: Dict[str, List[QueueEntry]] = {}
    order: List[str] = []
    for entry in entries:
        key = batch_key(entry.request)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(entry)
    batches: List[List[QueueEntry]] = []
    for key in order:
        group = groups[key]
        if len(group) <= max_batch:
            batches.append(group)
        else:
            splits = -(-len(group) // max_batch)  # ceil
            batches.extend(chunk_evenly(group, splits, chunks_per_worker=1))
    return batches


# ---------------------------------------------------------------------------
# Backend pinning: shared/exclusive lock around process-wide backend state
# ---------------------------------------------------------------------------


class _ReadWriteLock:
    """Many default-backend batches, or one backend-switching batch."""

    def __init__(self):
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False

    def acquire_shared(self) -> None:
        with self._cond:
            while self._writer:
                self._cond.wait()
            self._readers += 1

    def release_shared(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_exclusive(self) -> None:
        with self._cond:
            while self._writer or self._readers:
                self._cond.wait()
            self._writer = True

    def release_exclusive(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()


_backend_lock = _ReadWriteLock()


def _with_backend(backend: str, fn: Callable[[], object]):
    """Run ``fn`` with the process numeric backend pinned to ``backend``."""
    _backend_lock.acquire_shared()
    try:
        if vectorized.get_backend() == backend:
            return fn()
    finally:
        _backend_lock.release_shared()
    _backend_lock.acquire_exclusive()
    try:
        previous = vectorized.get_backend_override()
        vectorized.set_backend(backend)
        try:
            return fn()
        finally:
            vectorized.set_backend(previous)
    finally:
        _backend_lock.release_exclusive()


# ---------------------------------------------------------------------------
# Batch execution core (shared with the sharded worker tier)
# ---------------------------------------------------------------------------


def execute_batch_requests(
    requests: Sequence[protocol.SolveRequest],
    cache: Optional[ResultCache],
    backend: str,
) -> List[Dict[str, object]]:
    """Price, prefetch and solve one compatible batch.

    The deterministic core shared by the in-process :class:`Batcher` and
    the sharded worker tier (:mod:`repro.service.shard`), which is what
    makes the 1-shard/N-shard byte-identity contract hold by
    construction.  The caller must have pinned the numeric backend
    process-wide; ``backend`` here only scopes the cache keys.

    Returns one outcome dict per request, in order: either
    ``{"ok": True, "result", "scheme", "cache", "solve_ms"}`` or
    ``{"ok": False, "code", "message"}``.  Outcomes are plain JSON-able
    data so they can cross a process boundary; the caller turns them into
    wire responses and metrics on its side.
    """
    # Resolve schemes and price the cache for the whole batch first...
    plans: List[object] = []
    misses: List[protocol.SolveRequest] = []
    for request in requests:
        try:
            scheme = protocol.resolve_scheme(request)
        except protocol.ProtocolError as exc:
            plans.append(exc)
            continue
        key = (
            service_request_key(
                request.platform,
                request.tasks_config(),
                scheme,
                backend,
                solver=request.solver,
                epsilon=request.epsilon,
            )
            if cache is not None
            else None
        )
        stored = cache.get(key) if key is not None else None
        plans.append((scheme, key, stored))
        if stored is None:
            misses.append(request)
    # ... then warm the vectorized core for every miss in one pass.
    vectorized.prefetch_block_arrays([r.tasks for r in misses])

    out: List[Dict[str, object]] = []
    # Identical requests inside one batch solve once: the first
    # occurrence computes (and writes the cache), the rest are served
    # from this per-batch memo as hits.
    fresh: Dict[str, Dict[str, object]] = {}
    for request, plan in zip(requests, plans):
        if isinstance(plan, protocol.ProtocolError):
            out.append({"ok": False, "code": plan.code, "message": plan.message})
            continue
        scheme, key, stored = plan
        if stored is None and key is not None:
            stored = fresh.get(key)
        start = time.perf_counter()
        try:
            if stored is not None:
                result, cache_state = stored, "hit"
            else:
                result = protocol.execute_request(request)
                cache_state = "miss" if key is not None else "off"
                if key is not None:
                    cache.put(key, result)
                    fresh[key] = result
        except protocol.ProtocolError as exc:
            out.append({"ok": False, "code": exc.code, "message": exc.message})
            continue
        except Exception as exc:  # one bad solve must not kill the batch
            out.append(
                {
                    "ok": False,
                    "code": protocol.E_INTERNAL,
                    "message": f"{type(exc).__name__}: {exc}",
                }
            )
            continue
        solve_ms = (time.perf_counter() - start) * 1000.0
        out.append(
            {
                "ok": True,
                "result": result,
                "scheme": scheme,
                "cache": cache_state,
                "solve_ms": solve_ms,
            }
        )
    return out


def finalize_outcomes(
    entries: Sequence[QueueEntry],
    outcomes: Sequence[Dict[str, object]],
    waits_ms: Sequence[float],
    backend: str,
    metrics: MetricsRegistry,
    *,
    provenance_extra: Optional[Dict[str, object]] = None,
) -> List[Tuple[QueueEntry, Dict[str, object]]]:
    """Turn outcome dicts into wire responses, recording per-request metrics.

    Shared by the in-process batcher and the shard tier's parent side, so
    response envelopes and the metrics they feed cannot drift between the
    two execution paths.  ``provenance_extra`` is merged into each ok
    response's provenance (the shard tier stamps its shard index there).
    """
    out: List[Tuple[QueueEntry, Dict[str, object]]] = []
    for entry, outcome, wait_ms in zip(entries, outcomes, waits_ms):
        request = entry.request
        metrics.histogram("repro_queue_wait_ms").observe(wait_ms)
        if not outcome["ok"]:
            metrics.counter("repro_errors_total").inc()
            out.append(
                (
                    entry,
                    protocol.error_response(
                        request.id, str(outcome["code"]), str(outcome["message"])
                    ),
                )
            )
            continue
        cache_state = str(outcome["cache"])
        if cache_state == "hit":
            metrics.counter("repro_cache_hits_total").inc()
        elif cache_state == "miss":
            metrics.counter("repro_cache_misses_total").inc()
        solve_ms = float(outcome["solve_ms"])
        metrics.histogram("repro_solve_latency_ms").observe(solve_ms)
        metrics.counter("repro_responses_total").inc()
        result = outcome["result"]
        scheme_energy_counter(metrics, str(outcome["scheme"])).inc(
            result["energy"]["total"]
        )
        provenance: Dict[str, object] = {
            "backend": backend,
            "cache": cache_state,
            "batch_size": len(entries),
        }
        if provenance_extra:
            provenance.update(provenance_extra)
        out.append(
            (
                entry,
                protocol.ok_response(
                    request.id,
                    result,
                    timing={"queue_ms": wait_ms, "solve_ms": solve_ms},
                    provenance=provenance,
                ),
            )
        )
    return out


# ---------------------------------------------------------------------------
# The dispatcher
# ---------------------------------------------------------------------------


class Batcher:
    """Executes micro-batches on a persistent worker pool.

    ``cache=None`` disables result caching (provenance reports ``"off"``).
    The pool is created once and survives for the service's lifetime;
    :meth:`shutdown` drains it.
    """

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        metrics: Optional[MetricsRegistry] = None,
        *,
        workers: int = 1,
        max_batch: int = 32,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.cache = cache
        self.metrics = metrics if metrics is not None else service_metrics()
        self.max_batch = max_batch
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-solve"
        )
        self.dispatches = 0

    # -- pool plumbing -------------------------------------------------------

    def submit_batch(self, entries: List[QueueEntry]) -> "Future":
        """Dispatch one formed batch; resolves to ``[(entry, response), ...]``."""
        self.dispatches += 1
        return self._pool.submit(self.run_batch, entries)

    def shutdown(self, wait: bool = True) -> None:
        self._pool.shutdown(wait=wait)

    # -- batch execution (runs on a pool thread) -----------------------------

    def run_batch(
        self, entries: List[QueueEntry]
    ) -> List[Tuple[QueueEntry, Dict[str, object]]]:
        if not entries:
            return []
        backend = resolve_numeric(entries[0].request)
        metrics = self.metrics
        metrics.counter("repro_batches_total").inc()
        metrics.histogram("repro_batch_size").observe(len(entries))
        if len(entries) > 1:
            metrics.counter("repro_batched_requests_total").inc(len(entries))
        # 'jit' deliberately has no such hard error: set_backend('jit')
        # resolves through the kernels loader and degrades to numpy/scalar
        # with one structured warning when no provider compiles, so jit
        # requests stay servable on any host (response provenance still
        # reports the requested backend; cache keys stay 'jit'-scoped and
        # consistent process-wide).
        if backend == "numpy" and not vectorized.HAS_NUMPY:
            return [
                (
                    entry,
                    protocol.error_response(
                        entry.request.id,
                        protocol.E_BAD_REQUEST,
                        "numeric backend 'numpy' requested but numpy is not "
                        "installed on this server",
                    ),
                )
                for entry in entries
            ]
        return _with_backend(backend, lambda: self._run_pinned(entries, backend))

    def _run_pinned(
        self, entries: List[QueueEntry], backend: str
    ) -> List[Tuple[QueueEntry, Dict[str, object]]]:
        metrics = self.metrics
        inflight = metrics.gauge("repro_inflight")
        inflight.inc(len(entries))
        try:
            dispatched = time.monotonic()
            waits_ms = [
                max(0.0, (dispatched - entry.enqueued_at) * 1000.0)
                for entry in entries
            ]
            outcomes = execute_batch_requests(
                [entry.request for entry in entries], self.cache, backend
            )
            return finalize_outcomes(entries, outcomes, waits_ms, backend, metrics)
        finally:
            inflight.dec(len(entries))

"""Tests for the periodic task model and hyperperiod expansion."""

from __future__ import annotations

import pytest

from repro.workloads import (
    PeriodicTask,
    expand_periodic,
    hyperperiod,
    total_utilization,
)


class TestPeriodicTask:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            PeriodicTask("x", period=0.0, workload=1.0)
        with pytest.raises(ValueError):
            PeriodicTask("x", period=10.0, workload=0.0)
        with pytest.raises(ValueError):
            PeriodicTask("x", period=10.0, workload=1.0, relative_deadline=0.0)
        with pytest.raises(ValueError):
            PeriodicTask("x", period=10.0, workload=1.0, phase=-1.0)

    def test_implicit_deadline_defaults_to_period(self):
        task = PeriodicTask("x", period=20.0, workload=5.0)
        assert task.deadline_offset == 20.0

    def test_density(self):
        task = PeriodicTask("x", period=20.0, workload=100.0)
        assert task.density(speed=10.0) == pytest.approx(0.5)


class TestHyperperiod:
    def test_integer_periods(self):
        tasks = [
            PeriodicTask("a", period=4.0, workload=1.0),
            PeriodicTask("b", period=6.0, workload=1.0),
        ]
        assert hyperperiod(tasks) == pytest.approx(12.0)

    def test_fractional_periods(self):
        tasks = [
            PeriodicTask("a", period=2.5, workload=1.0),
            PeriodicTask("b", period=1.5, workload=1.0),
        ]
        assert hyperperiod(tasks) == pytest.approx(7.5)

    def test_single_task(self):
        assert hyperperiod([PeriodicTask("a", period=7.0, workload=1.0)]) == 7.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            hyperperiod([])


class TestExpansion:
    def test_counts_over_hyperperiod(self):
        tasks = [
            PeriodicTask("a", period=4.0, workload=1.0),
            PeriodicTask("b", period=6.0, workload=2.0),
        ]
        jobs = expand_periodic(tasks, window=12.0)
        names = [j.name for j in jobs]
        assert names.count("a#0") == 1
        assert sum(1 for n in names if n.startswith("a#")) == 3
        assert sum(1 for n in names if n.startswith("b#")) == 2

    def test_releases_and_deadlines(self):
        task = PeriodicTask("a", period=10.0, workload=5.0, relative_deadline=8.0)
        jobs = expand_periodic([task], window=25.0)
        assert [j.release for j in jobs] == [0.0, 10.0, 20.0]
        assert [j.deadline for j in jobs] == [8.0, 18.0, 28.0]

    def test_phase_shifts_releases(self):
        task = PeriodicTask("a", period=10.0, workload=5.0, phase=3.0)
        jobs = expand_periodic([task], window=20.0)
        assert [j.release for j in jobs] == [3.0, 13.0]

    def test_jobs_sorted_by_release(self):
        tasks = [
            PeriodicTask("a", period=7.0, workload=1.0, phase=1.0),
            PeriodicTask("b", period=5.0, workload=1.0),
        ]
        jobs = expand_periodic(tasks, window=35.0)
        releases = [j.release for j in jobs]
        assert releases == sorted(releases)

    def test_default_window_is_hyperperiod(self):
        tasks = [
            PeriodicTask("a", period=4.0, workload=1.0),
            PeriodicTask("b", period=6.0, workload=1.0),
        ]
        jobs = expand_periodic(tasks)
        assert max(j.release for j in jobs) < 12.0

    def test_rejects_degenerate_window(self):
        task = PeriodicTask("a", period=10.0, workload=5.0, phase=5.0)
        with pytest.raises(ValueError):
            expand_periodic([task], window=2.0)


class TestUtilization:
    def test_sum_of_densities(self):
        tasks = [
            PeriodicTask("a", period=10.0, workload=100.0),  # 10 ms at 10 MHz... util 1
            PeriodicTask("b", period=20.0, workload=100.0),  # util 0.5
        ]
        assert total_utilization(tasks, speed=10.0) == pytest.approx(1.5)


class TestEndToEnd:
    def test_periodic_stream_schedulable_online(self):
        """Expand a periodic set and run SDEM-ON on it."""
        from repro.core import SdemOnlinePolicy
        from repro.models import paper_platform
        from repro.sim import simulate

        platform = paper_platform()
        tasks = [
            PeriodicTask("cam", period=40.0, workload=4000.0),
            PeriodicTask("imu", period=20.0, workload=800.0),
            PeriodicTask("net", period=60.0, workload=2500.0),
        ]
        jobs = expand_periodic(tasks, window=240.0)
        result = simulate(SdemOnlinePolicy(platform), jobs, platform)
        assert result.total_energy > 0.0
        assert result.peak_concurrency <= 3

"""Wire-protocol tests: parsing, scheme resolution, execution, envelopes."""

from __future__ import annotations

import json

import pytest

from repro.core import vectorized
from repro.models import paper_platform
from repro.serialization import SCHEMA_VERSION
from repro.service.protocol import (
    E_BAD_REQUEST,
    E_INFEASIBLE,
    E_UNKNOWN_SCHEME,
    E_UNSUPPORTED_VERSION,
    ProtocolError,
    canonical_result_bytes,
    decode_line,
    encode_line,
    energy_from_wire,
    error_response,
    execute_request,
    ok_response,
    platform_from_wire,
    platform_to_wire,
    request_from_wire,
    resolve_scheme,
)


COMMON_RELEASE_TASKS = [
    {"name": "a", "release": 0.0, "deadline": 40.0, "workload": 8000.0},
    {"name": "b", "release": 0.0, "deadline": 70.0, "workload": 15000.0},
]

SPORADIC_TASKS = [
    {"name": "x", "release": 0.0, "deadline": 50.0, "workload": 4000.0},
    {"name": "y", "release": 60.0, "deadline": 90.0, "workload": 3000.0},
    {"name": "z", "release": 30.0, "deadline": 200.0, "workload": 2000.0},
]


def wire_solve(**overrides):
    wire = {
        "v": 1,
        "id": "r1",
        "kind": "solve",
        "tasks": COMMON_RELEASE_TASKS,
    }
    wire.update(overrides)
    return wire


class TestRequestParsing:
    def test_minimal_request(self):
        request = request_from_wire(wire_solve())
        assert request.id == "r1"
        assert request.scheme == "auto"
        assert request.lane == "interactive"
        assert len(request.tasks) == 2

    def test_unknown_fields_ignored(self):
        request = request_from_wire(
            wire_solve(shiny_new_field=123, platform={"alpha_m": 2000.0, "bogus": 1})
        )
        assert request.platform.memory.alpha_m == 2000.0

    def test_newer_version_rejected(self):
        with pytest.raises(ProtocolError) as excinfo:
            request_from_wire(wire_solve(v=99))
        assert excinfo.value.code == E_UNSUPPORTED_VERSION

    def test_missing_id_rejected(self):
        wire = wire_solve()
        del wire["id"]
        with pytest.raises(ProtocolError) as excinfo:
            request_from_wire(wire)
        assert excinfo.value.code == E_BAD_REQUEST
        assert "id" in excinfo.value.message

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ProtocolError) as excinfo:
            request_from_wire(wire_solve(scheme="quantum"))
        assert excinfo.value.code == E_UNKNOWN_SCHEME
        assert "quantum" in excinfo.value.message

    def test_bad_lane_rejected(self):
        with pytest.raises(ProtocolError, match="lane"):
            request_from_wire(wire_solve(lane="fast"))

    def test_bad_numeric_rejected(self):
        with pytest.raises(ProtocolError, match="numeric"):
            request_from_wire(wire_solve(numeric="fortran"))

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ProtocolError, match="timeout_ms"):
            request_from_wire(wire_solve(timeout_ms=0))

    def test_bad_tasks_reported_actionably(self):
        with pytest.raises(ProtocolError, match="missing fields"):
            request_from_wire(wire_solve(tasks=[{"release": 0.0, "deadline": 5.0}]))

    def test_tasks_config_includes_names(self):
        request = request_from_wire(wire_solve())
        config = request.tasks_config()
        assert ["a", "b"] == [row[3] for row in config]


class TestPlatformWire:
    def test_roundtrip(self):
        platform = paper_platform(alpha_m=2000.0, xi_m=25.0, num_cores=4)
        assert platform_from_wire(platform_to_wire(platform)) == platform

    def test_defaults_fill_missing(self):
        platform = platform_from_wire({"alpha_m": 1000.0})
        assert platform.memory.alpha_m == 1000.0
        assert platform.core.alpha == paper_platform().core.alpha

    def test_none_means_paper_default(self):
        assert platform_from_wire(None) == paper_platform()

    def test_invalid_number_reported(self):
        with pytest.raises(ProtocolError, match="alpha_m"):
            platform_from_wire({"alpha_m": "lots"})


class TestSchemeResolution:
    def test_auto_common_release_without_overheads(self):
        request = request_from_wire(
            wire_solve(platform={"xi": 0.0, "xi_m": 0.0})
        )
        assert resolve_scheme(request) == "common-release"

    def test_auto_common_release_with_overheads(self):
        request = request_from_wire(wire_solve())  # paper default xi_m = 40
        assert resolve_scheme(request) == "common-release-overhead"

    def test_auto_falls_back_to_online(self):
        request = request_from_wire(wire_solve(tasks=SPORADIC_TASKS))
        assert resolve_scheme(request) == "sdem-on"

    def test_explicit_offline_scheme_checked(self):
        with pytest.raises(ProtocolError) as excinfo:
            resolve_scheme(
                request_from_wire(
                    wire_solve(tasks=SPORADIC_TASKS, scheme="common-release")
                )
            )
        assert excinfo.value.code == E_INFEASIBLE


class TestExecution:
    def test_offline_result_shape(self):
        request = request_from_wire(wire_solve())
        result = execute_request(request)
        assert result["scheme"] == "common-release-overhead"
        assert result["schedule"]["schema"] == SCHEMA_VERSION
        assert result["energy"]["total"] > 0.0
        assert "delta" in result

    def test_online_result_shape(self):
        request = request_from_wire(wire_solve(tasks=SPORADIC_TASKS, scheme="mbkps"))
        result = execute_request(request)
        assert result["scheme"] == "mbkps"
        assert result["peak_concurrency"] >= 1
        assert result["energy"]["total"] > 0.0

    def test_result_survives_json_roundtrip_byte_identically(self):
        request = request_from_wire(wire_solve())
        result = execute_request(request)
        rebuilt = json.loads(json.dumps(result))
        assert canonical_result_bytes(rebuilt) == canonical_result_bytes(result)

    def test_energy_wire_roundtrip(self):
        request = request_from_wire(wire_solve())
        result = execute_request(request)
        breakdown = energy_from_wire(result["energy"])
        assert breakdown.total == pytest.approx(result["energy"]["total"])

    @pytest.mark.skipif(not vectorized.HAS_NUMPY, reason="needs numpy")
    def test_backends_agree_on_energy(self):
        request = request_from_wire(wire_solve())
        previous = vectorized.get_backend_override()
        try:
            vectorized.set_backend("scalar")
            scalar = execute_request(request)
            vectorized.set_backend("numpy")
            numpy = execute_request(request)
        finally:
            vectorized.set_backend(previous)
        assert scalar["energy"]["total"] == pytest.approx(
            numpy["energy"]["total"], rel=1e-9
        )


class TestEnvelopes:
    def test_ok_response_separates_provenance(self):
        response = ok_response(
            "r1", {"scheme": "agreeable"}, provenance={"cache": "hit"}
        )
        assert response["ok"] is True
        assert "cache" not in response["result"]

    def test_error_response_carries_retry_after(self):
        response = error_response("r1", "QUEUE_FULL", "full", 250.0)
        assert response["error"]["retry_after_ms"] == 250.0

    def test_line_framing_roundtrip(self):
        obj = error_response(None, "BAD_REQUEST", "nope")
        assert decode_line(encode_line(obj).strip()) == obj

    def test_garbage_line_rejected(self):
        with pytest.raises(ProtocolError, match="undecodable"):
            decode_line(b"{not json")

"""Project-level configuration for ``repro check``: ``[tool.repro-lint]``.

The backend-purity rules (BCK001/BCK002) enforce that numpy is imported
only inside a sanctioned list of modules.  That list used to be baked
into :mod:`repro.lint.rules_backend`; it is now read from the analysis
root's ``pyproject.toml``::

    [tool.repro-lint]
    sanctioned-numpy-modules = [
        "repro.core.vectorized",
        "repro.utils.solvers",
    ]

so a downstream checkout can sanction an extra accelerator module (or
tighten the list) without patching the rule source.  With no
``pyproject.toml``, no ``[tool.repro-lint]`` table, or no key, the
defaults above apply unchanged.

Parsing uses :mod:`tomllib` on Python 3.11+.  The 3.10 CI leg has no
TOML parser baked in, so a minimal fallback reads just the
``[tool.repro-lint]`` table (string and list-of-string values); both
parsers reject the same malformed shapes via :class:`ConfigError`,
which subclasses ``ValueError`` so the CLI maps it to exit code 2 like
every other usage error.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

try:  # Python 3.11+
    import tomllib
except ImportError:  # pragma: no cover - exercised on the 3.10 CI leg
    tomllib = None  # type: ignore[assignment]

__all__ = [
    "ConfigError",
    "DEFAULT_SANCTIONED_JIT_MODULES",
    "DEFAULT_SANCTIONED_NUMPY_MODULES",
    "DEFAULT_SHARD_STATE_MODULES",
    "DEFAULT_UNIT_TAGGED_MODULES",
    "LintConfig",
    "load_config",
]

#: The baked-in sanctioned list (see rules_backend for the rationale).
DEFAULT_SANCTIONED_NUMPY_MODULES: Tuple[str, ...] = (
    "repro.core.vectorized",
    "repro.utils.solvers",
    "repro.core.kernels._numba_provider",
)

#: Packages allowed to import the jit toolchains (numba/cffi).  Unlike the
#: numpy list this is prefix-scoped: ``repro.core.kernels`` sanctions the
#: package and every submodule under it (the providers live in
#: ``_numba_provider``/``_cffi_provider``).
DEFAULT_SANCTIONED_JIT_MODULES: Tuple[str, ...] = (
    "repro.core.kernels",
)

#: Modules whose quantity-valued helpers (ε, grid pitches, ladders,
#: energies) UNT002 requires to carry ``@unit(...)`` tags.  The
#: ε-approximate tier is the default: its correctness argument is a
#: chain of unit-bearing bounds, so untagged discretization quantities
#: there are presumed mistakes, not style.
DEFAULT_UNIT_TAGGED_MODULES: Tuple[str, ...] = (
    "repro.core.fptas",
)

#: Modules that run inside (or route onto) the sharded worker tier, where
#: CON005 flags module-level mutable state: each shard is a separate
#: process, so a module-global dict/list/set silently forks into N
#: divergent copies.  Prefix-scoped like the jit list.
DEFAULT_SHARD_STATE_MODULES: Tuple[str, ...] = (
    "repro.service.shard",
    "repro.service.ring",
)

_TABLE_HEADER = "[tool.repro-lint]"
_KNOWN_KEYS = (
    "sanctioned-numpy-modules",
    "sanctioned-jit-modules",
    "unit-tagged-modules",
    "shard-state-modules",
)

_KEY_VALUE = re.compile(r"^([A-Za-z0-9_-]+)\s*=\s*(.*)$", re.DOTALL)
_QUOTED = re.compile(r"^(?:\"([^\"]*)\"|'([^']*)')$")


class ConfigError(ValueError):
    """Malformed ``[tool.repro-lint]`` table (CLI exit code 2)."""


@dataclass(frozen=True)
class LintConfig:
    """Resolved lint configuration for one analysis run."""

    sanctioned_numpy_modules: Tuple[str, ...] = DEFAULT_SANCTIONED_NUMPY_MODULES
    sanctioned_jit_modules: Tuple[str, ...] = DEFAULT_SANCTIONED_JIT_MODULES
    unit_tagged_modules: Tuple[str, ...] = DEFAULT_UNIT_TAGGED_MODULES
    shard_state_modules: Tuple[str, ...] = DEFAULT_SHARD_STATE_MODULES


def load_config(root: str) -> LintConfig:
    """Read ``<root>/pyproject.toml``; absent file/table means defaults.

    Raises :class:`ConfigError` for an unparseable file, unknown keys in
    the table, or values of the wrong shape.
    """
    path = os.path.join(root, "pyproject.toml")
    if not os.path.isfile(path):
        return LintConfig()
    table = _read_table(path)
    if table is None:
        return LintConfig()
    return _validate(table, path)


def _read_table(path: str) -> Optional[Dict[str, object]]:
    """The raw ``[tool.repro-lint]`` table, or ``None`` when absent."""
    if tomllib is not None:
        with open(path, "rb") as handle:
            try:
                document = tomllib.load(handle)
            except tomllib.TOMLDecodeError as exc:
                raise ConfigError(f"{path}: not valid TOML: {exc}") from exc
        tool = document.get("tool")
        if not isinstance(tool, dict):
            return None
        table = tool.get("repro-lint")
        if table is None:
            return None
        if not isinstance(table, dict):
            raise ConfigError(f"{path}: [tool.repro-lint] must be a table")
        return dict(table)
    return _fallback_table(path)


def _fallback_table(path: str) -> Optional[Dict[str, object]]:
    """Python 3.10 fallback: extract just the ``[tool.repro-lint]`` table.

    Supports the subset this project documents -- bare keys bound to a
    quoted string or a (possibly multi-line) list of quoted strings --
    and raises :class:`ConfigError` on anything else inside the table so
    3.10 and 3.11+ runs reject the same inputs.
    """
    with open(path, encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    seen = False
    in_table = False
    body: List[str] = []
    for line in lines:
        stripped = line.strip()
        if stripped.startswith("["):
            in_table = stripped == _TABLE_HEADER
            seen = seen or in_table
            continue
        if in_table:
            body.append(line)
    if not seen:
        return None
    table: Dict[str, object] = {}
    for key, raw in _logical_pairs(body, path):
        table[key] = _parse_value(raw, key, path)
    return table


def _logical_pairs(
    body: List[str], path: str
) -> Iterator[Tuple[str, str]]:
    """Yield ``(key, raw value)`` pairs, joining multi-line list values."""
    pending: Optional[Tuple[str, List[str]]] = None
    for line in body:
        stripped = line.strip()
        if pending is not None:
            pending[1].append(line)
            if _brackets_balanced("\n".join(pending[1])):
                yield pending[0], "\n".join(pending[1]).strip()
                pending = None
            continue
        if not stripped or stripped.startswith("#"):
            continue
        match = _KEY_VALUE.match(stripped)
        if match is None:
            raise ConfigError(
                f"{path}: cannot parse [tool.repro-lint] line {stripped!r}"
            )
        key, value = match.group(1), match.group(2).strip()
        if value.startswith("[") and not _brackets_balanced(value):
            pending = (key, [value])
            continue
        yield key, value
    if pending is not None:
        raise ConfigError(
            f"{path}: unterminated list for [tool.repro-lint] "
            f"key {pending[0]!r}"
        )


def _brackets_balanced(text: str) -> bool:
    return text.count("[") <= text.count("]")


def _parse_value(raw: str, key: str, path: str) -> object:
    """Parse the fallback subset: a quoted string or a list of them."""
    raw = raw.strip()
    quoted = _QUOTED.match(raw)
    if quoted is not None:
        value = quoted.group(1)
        return value if value is not None else quoted.group(2)
    if raw.startswith("[") and raw.endswith("]"):
        items: List[object] = []
        for item in raw[1:-1].split(","):
            item = item.strip()
            if not item or item.startswith("#"):
                continue
            entry = _QUOTED.match(item)
            if entry is None:
                # Preserve the non-string entry so validation reports the
                # same shape error tomllib-based runs do.
                items.append(None)
                continue
            value = entry.group(1)
            items.append(value if value is not None else entry.group(2))
        return items
    # Scalars outside the subset (ints, booleans, ...) are preserved
    # opaquely; validation rejects them where a list is required.
    return raw


def _validate(table: Dict[str, object], path: str) -> LintConfig:
    unknown = sorted(set(table) - set(_KNOWN_KEYS))
    if unknown:
        raise ConfigError(
            f"{path}: unknown [tool.repro-lint] key(s): "
            f"{', '.join(unknown)}; known keys: {', '.join(_KNOWN_KEYS)}"
        )
    numpy_modules = DEFAULT_SANCTIONED_NUMPY_MODULES
    jit_modules = DEFAULT_SANCTIONED_JIT_MODULES
    unit_tagged = DEFAULT_UNIT_TAGGED_MODULES
    shard_state = DEFAULT_SHARD_STATE_MODULES
    if "sanctioned-numpy-modules" in table:
        numpy_modules = _string_tuple(
            table["sanctioned-numpy-modules"], "sanctioned-numpy-modules", path
        )
    if "sanctioned-jit-modules" in table:
        jit_modules = _string_tuple(
            table["sanctioned-jit-modules"], "sanctioned-jit-modules", path
        )
    if "unit-tagged-modules" in table:
        unit_tagged = _string_tuple(
            table["unit-tagged-modules"], "unit-tagged-modules", path
        )
    if "shard-state-modules" in table:
        shard_state = _string_tuple(
            table["shard-state-modules"], "shard-state-modules", path
        )
    return LintConfig(
        sanctioned_numpy_modules=numpy_modules,
        sanctioned_jit_modules=jit_modules,
        unit_tagged_modules=unit_tagged,
        shard_state_modules=shard_state,
    )


def _string_tuple(value: object, key: str, path: str) -> Tuple[str, ...]:
    if not isinstance(value, (list, tuple)) or not all(
        isinstance(item, str) and item for item in value
    ):
        raise ConfigError(
            f"{path}: [tool.repro-lint] {key} must be a list of "
            "non-empty strings"
        )
    return tuple(value)

"""Tests for the memory and platform models."""

from __future__ import annotations

import pytest

from repro.models import MemoryModel, Platform, paper_platform
from repro.models.platform import arm_cortex_a57, dram_50nm


class TestMemoryModel:
    def test_rejects_negative_parameters(self):
        with pytest.raises(ValueError):
            MemoryModel(alpha_m=-1.0)
        with pytest.raises(ValueError):
            MemoryModel(alpha_m=1.0, xi_m=-1.0)

    def test_active_energy(self):
        mem = MemoryModel(alpha_m=50.0)
        assert mem.active_energy(4.0) == pytest.approx(200.0)
        with pytest.raises(ValueError):
            mem.active_energy(-1.0)

    def test_transition_energy_is_alpha_m_times_xi_m(self):
        mem = MemoryModel(alpha_m=50.0, xi_m=3.0)
        assert mem.transition_energy() == pytest.approx(150.0)

    def test_break_even_decision(self):
        mem = MemoryModel(alpha_m=50.0, xi_m=3.0)
        assert mem.should_sleep(3.0)
        assert mem.should_sleep(10.0)
        assert not mem.should_sleep(2.9)

    def test_best_gap_energy_takes_minimum(self):
        mem = MemoryModel(alpha_m=50.0, xi_m=3.0)
        assert mem.best_gap_energy(2.0) == pytest.approx(100.0)  # stay awake
        assert mem.best_gap_energy(10.0) == pytest.approx(150.0)  # sleep

    def test_zero_xi_m_sleep_is_free(self):
        mem = MemoryModel(alpha_m=50.0, xi_m=0.0)
        assert mem.best_gap_energy(7.0) == 0.0

    def test_copy_helpers(self):
        mem = MemoryModel(alpha_m=50.0, xi_m=3.0)
        assert mem.with_alpha_m(60.0).alpha_m == 60.0
        assert mem.with_alpha_m(60.0).xi_m == 3.0
        assert mem.with_xi_m(5.0).xi_m == 5.0


class TestPlatform:
    def test_unbounded_flag(self, simple_core, simple_memory):
        assert Platform(simple_core, simple_memory).unbounded
        assert not Platform(simple_core, simple_memory, num_cores=8).unbounded

    def test_rejects_zero_cores(self, simple_core, simple_memory):
        with pytest.raises(ValueError):
            Platform(simple_core, simple_memory, num_cores=0)

    def test_negligible_core_static(self, simple_platform):
        zeroed = simple_platform.negligible_core_static()
        assert zeroed.core.alpha == 0.0
        assert zeroed.memory == simple_platform.memory

    def test_zero_transition_overheads(self):
        platform = paper_platform(xi=2.0, xi_m=40.0)
        clean = platform.zero_transition_overheads()
        assert clean.core.xi == 0.0
        assert clean.memory.xi_m == 0.0
        assert clean.core.alpha == platform.core.alpha

    def test_paper_platform_defaults_match_table4_stars(self):
        platform = paper_platform()
        assert platform.num_cores == 8
        assert platform.memory.alpha_m == pytest.approx(4000.0)  # 4 W
        assert platform.memory.xi_m == pytest.approx(40.0)  # 40 ms
        assert platform.core == arm_cortex_a57()
        assert platform.memory == dram_50nm()

    def test_with_helpers(self, simple_platform):
        assert simple_platform.with_num_cores(4).num_cores == 4
        new_mem = MemoryModel(alpha_m=1.0)
        assert simple_platform.with_memory(new_mem).memory is new_mem

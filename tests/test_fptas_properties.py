"""Property tests for the ε-approximate tier (hypothesis).

The contract under randomized instances and platforms, on every numeric
backend: ``energy(fptas, ε) <= (1 + ε) * energy(exact)``, and every
schedule the tier accepts is feasible — all placements inside task
windows, at or below ``s_up``, with no deadline misses.  Backend
coverage is explicit because the fptas pricing path is *claimed* to be
backend-independent by construction; these tests would catch any
backend-sensitive term sneaking into it.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import vectorized
from repro.core.agreeable import solve_agreeable
from repro.core.blocks import block_energy_cache_clear
from repro.core.common_release import solve_common_release
from repro.core.fptas import (
    solve_agreeable_fptas,
    solve_common_release_fptas,
)
from repro.core.transition import solve_common_release_with_overhead
from repro.models import CorePowerModel, MemoryModel, Platform, Task, TaskSet
from repro.schedule import validate_schedule

EPSILON = 0.1

BACKENDS = ["scalar"] + (["numpy", "jit"] if vectorized.HAS_NUMPY else [])


@pytest.fixture(autouse=True)
def _reset_backend():
    yield
    vectorized.set_backend(None)


def per_backend(solve):
    """``solve()`` under every available backend with cold memo caches."""
    results = {}
    for backend in BACKENDS:
        vectorized.set_backend(backend)
        block_energy_cache_clear()
        vectorized.block_arrays_cache_clear()
        results[backend] = solve()
    return results


# -- strategies ---------------------------------------------------------------

platforms = st.builds(
    lambda alpha, alpha_m, lam: Platform(
        CorePowerModel(beta=1e-6, lam=lam, alpha=alpha, s_up=2000.0),
        MemoryModel(alpha_m=alpha_m),
    ),
    alpha=st.sampled_from([0.0, 0.1, 2.0, 50.0]),
    alpha_m=st.floats(0.1, 200.0),
    lam=st.sampled_from([2.0, 2.5, 3.0]),
)

overhead_platforms = st.builds(
    lambda alpha, alpha_m, xi_m: Platform(
        CorePowerModel(beta=1e-6, lam=3.0, alpha=alpha, s_up=2000.0),
        MemoryModel(alpha_m=alpha_m, xi_m=xi_m),
    ),
    alpha=st.sampled_from([0.0, 2.0]),
    alpha_m=st.floats(0.5, 200.0),
    xi_m=st.floats(0.0, 30.0),
)

common_release_sets = st.lists(
    st.tuples(st.floats(5.0, 150.0), st.floats(10.0, 5000.0)),
    min_size=1,
    max_size=12,
).map(lambda pairs: TaskSet(Task(0.0, d, w) for d, w in pairs))


@st.composite
def agreeable_sets(draw):
    n = draw(st.integers(1, 12))
    releases = sorted(draw(st.floats(0.0, 300.0)) for _ in range(n))
    tasks, last_d = [], 0.0
    for r in releases:
        d = max(r + draw(st.floats(8.0, 80.0)), last_d + 0.5)
        tasks.append(Task(r, d, draw(st.floats(10.0, 3000.0))))
        last_d = d
    return TaskSet(tasks)


_slow = settings(
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


def assert_bounded(approx: float, exact: float) -> None:
    assert approx <= (1.0 + EPSILON) * exact + 1e-9 * max(1.0, exact)


# -- the (1+ε) bound, on every backend ----------------------------------------


@_slow
@given(tasks=agreeable_sets(), platform=platforms)
def test_agreeable_bound_holds_on_every_backend(tasks, platform):
    exact = solve_agreeable(tasks, platform).predicted_energy
    results = per_backend(
        lambda: solve_agreeable_fptas(
            tasks, platform, epsilon=EPSILON
        ).predicted_energy
    )
    for energy in results.values():
        assert_bounded(energy, exact)
    # Backend-independent by construction: identical floats, not approx.
    assert len(set(results.values())) == 1


@_slow
@given(tasks=common_release_sets, platform=platforms)
def test_common_release_bound_holds_on_every_backend(tasks, platform):
    exact = solve_common_release(tasks, platform).predicted_energy
    results = per_backend(
        lambda: solve_common_release_fptas(
            tasks, platform, epsilon=EPSILON
        ).predicted_energy
    )
    for energy in results.values():
        assert_bounded(energy, exact)
    assert len(set(results.values())) == 1


@_slow
@given(tasks=common_release_sets, platform=overhead_platforms)
def test_overhead_bound_holds(tasks, platform):
    exact = solve_common_release_with_overhead(tasks, platform).predicted_energy
    approx = solve_common_release_fptas(
        tasks, platform, epsilon=EPSILON
    ).predicted_energy
    assert_bounded(approx, exact)


@_slow
@given(tasks=agreeable_sets(), platform=overhead_platforms)
def test_agreeable_overhead_bound_holds(tasks, platform):
    exact = solve_agreeable(
        tasks, platform, include_transition_overhead=True
    ).predicted_energy
    approx = solve_agreeable_fptas(
        tasks, platform, epsilon=EPSILON, include_transition_overhead=True
    ).predicted_energy
    assert_bounded(approx, exact)


# -- feasibility of accepted schedules ----------------------------------------


@_slow
@given(tasks=agreeable_sets(), platform=platforms)
def test_agreeable_schedule_feasible(tasks, platform):
    """Placements inside windows, speeds <= s_up, workloads conserved."""
    solution = solve_agreeable_fptas(tasks, platform, epsilon=EPSILON)
    validate_schedule(
        solution.schedule(),
        tasks,
        max_speed=platform.core.s_up,
        require_non_preemptive=True,
    )


@_slow
@given(tasks=common_release_sets, platform=platforms)
def test_common_release_schedule_feasible(tasks, platform):
    solution = solve_common_release_fptas(tasks, platform, epsilon=EPSILON)
    validate_schedule(
        solution.schedule(), tasks, max_speed=platform.core.s_up
    )


@_slow
@given(tasks=agreeable_sets(), platform=platforms, eps=st.sampled_from([0.02, 0.5, 2.0]))
def test_bound_scales_with_epsilon(tasks, platform, eps):
    """The contract holds at the extremes of the legal ε range too."""
    exact = solve_agreeable(tasks, platform).predicted_energy
    approx = solve_agreeable_fptas(tasks, platform, epsilon=eps).predicted_energy
    assert approx <= (1.0 + eps) * exact + 1e-9 * max(1.0, exact)

"""Idle-window edge cases for the segment-table accountant.

The batched pricing kernel only engages above the small-table cutoff, so
every scenario here is built both small (scalar reference loop) and
large (>_SMALL_N segments, numpy batch when available) and checked
against the independent full path (:func:`repro.energy.accounting.account`
over a materialized ``Schedule``).  Covered shapes:

* zero-length idle windows -- abutting segments and busy spans that
  exactly touch the horizon boundaries must price no gap at all;
* back-to-back sleep opportunities shorter than ``xi_m`` -- BREAK_EVEN
  must keep the memory powered (no sleep credit), ALWAYS must pay the
  transition per gap;
* all-cores-idle boundaries -- leading/trailing windows where no core
  runs anything, including a horizon far wider than the busy span.
"""

from __future__ import annotations

import pytest

from repro.core import vectorized
from repro.energy.accounting import (
    SleepPolicy,
    _account_segments_scalar,
    account,
    account_segments,
)
from repro.models import CorePowerModel, MemoryModel, Platform
from repro.schedule.timeline import CoreTimeline, ExecutionInterval, Schedule

REL_TOL = 1e-9

POLICIES = (SleepPolicy.BREAK_EVEN, SleepPolicy.ALWAYS, SleepPolicy.NEVER)


@pytest.fixture(autouse=True)
def _reset_backend():
    yield
    vectorized.set_backend(None)


def platform_with(xi_m: float = 8.0, xi: float = 5.0) -> Platform:
    return Platform(
        CorePowerModel(beta=1e-6, lam=3.0, alpha=2.0, s_up=1000.0, xi=xi),
        MemoryModel(alpha_m=10.0, xi_m=xi_m),
        num_cores=4,
    )


def seg(core: int, start: float, end: float, speed: float = 100.0, name: str = ""):
    label = name or f"t{core}_{start:.3f}"
    return (core, ExecutionInterval(label, start, end, speed))


def schedule_of(segments):
    per_core = {}
    for core, interval in segments:
        per_core.setdefault(core, []).append(interval)
    count = max(per_core) + 1
    return Schedule(CoreTimeline(per_core.get(i, [])) for i in range(count))


def assert_matches_full_path(segments, platform, horizon):
    """account_segments == the Schedule-based accountant, per policy,
    on whichever backend is currently selected."""
    priced = account_segments(
        segments, platform, horizon=horizon, memory_policies=POLICIES
    )
    schedule = schedule_of(segments)
    for policy, fast in zip(POLICIES, priced):
        reference = account(
            schedule, platform, horizon=horizon, memory_policy=policy
        )
        assert fast.total == pytest.approx(reference.total, rel=REL_TOL)
        assert fast.memory_total == pytest.approx(
            reference.memory_total, rel=REL_TOL
        )
        assert fast.memory_sleep_time == pytest.approx(
            reference.memory_sleep_time, rel=REL_TOL, abs=1e-12
        )
    return priced


def backends():
    names = ["scalar"]
    if vectorized.HAS_NUMPY:
        names.append("numpy")
    return names


def tile(segments, copies: int, stride: float):
    """Repeat a segment pattern ``copies`` times, shifted by ``stride``,
    to push the table over the batch cutoff without changing its shape."""
    out = list(segments)
    for k in range(1, copies):
        for core, iv in segments:
            out.append(
                seg(core, iv.start + k * stride, iv.end + k * stride, iv.speed)
            )
    return out


class TestZeroLengthIdleWindows:
    @pytest.mark.parametrize("backend", backends())
    def test_abutting_segments_price_no_gap(self, backend):
        vectorized.set_backend(backend)
        platform = platform_with()
        base = [
            seg(0, 0.0, 4.0),
            seg(0, 4.0, 9.0),  # zero-length window at t=4
            seg(1, 0.0, 9.0),
        ]
        segments = tile(base, 30, 9.0)  # 90 segments, still gap-free
        assert len(segments) > vectorized._SMALL_N
        horizon = (0.0, 30 * 9.0)
        priced = assert_matches_full_path(segments, platform, horizon)
        for breakdown in priced:
            assert breakdown.memory_idle == pytest.approx(0.0, abs=1e-9)
            assert breakdown.memory_sleep_time == pytest.approx(0.0, abs=1e-9)
            assert breakdown.memory_busy_time == pytest.approx(
                horizon[1], rel=REL_TOL
            )

    @pytest.mark.parametrize("backend", backends())
    def test_busy_span_exactly_touching_horizon(self, backend):
        vectorized.set_backend(backend)
        platform = platform_with()
        base = [seg(0, 0.0, 5.0), seg(1, 5.0, 10.0)]
        segments = tile(base, 40, 10.0)
        horizon = (0.0, 40 * 10.0)  # busy union == horizon exactly
        priced = assert_matches_full_path(segments, platform, horizon)
        for breakdown in priced:
            assert breakdown.memory_idle == pytest.approx(0.0, abs=1e-9)


class TestShortBackToBackSleeps:
    """Gaps shorter than xi_m: BREAK_EVEN stays powered, ALWAYS pays."""

    @pytest.mark.parametrize("backend", backends())
    def test_sub_break_even_gaps(self, backend):
        vectorized.set_backend(backend)
        platform = platform_with(xi_m=8.0)
        gap = 3.0  # < xi_m
        busy = 5.0
        copies = 40
        base = [seg(0, 0.0, busy)]
        segments = tile(base, copies, busy + gap)
        horizon = (0.0, copies * (busy + gap) - gap)
        priced = assert_matches_full_path(segments, platform, horizon)
        by_policy = dict(zip(POLICIES, priced))
        n_gaps = copies - 1
        alpha_m = platform.memory.alpha_m
        # BREAK_EVEN: every gap is too short to amortize the transition.
        be = by_policy[SleepPolicy.BREAK_EVEN]
        assert be.memory_sleep_time == pytest.approx(0.0, abs=1e-9)
        assert be.memory_idle == pytest.approx(
            alpha_m * gap * n_gaps, rel=REL_TOL
        )
        # ALWAYS: pays the full transition (xi_m worth of static energy)
        # per gap and books the whole gap as sleep.
        always = by_policy[SleepPolicy.ALWAYS]
        assert always.memory_sleep_time == pytest.approx(
            gap * n_gaps, rel=REL_TOL
        )
        assert always.memory_idle == pytest.approx(
            alpha_m * platform.memory.xi_m * n_gaps, rel=REL_TOL
        )
        # NEVER: static power across every gap, no sleep.
        never = by_policy[SleepPolicy.NEVER]
        assert never.memory_sleep_time == pytest.approx(0.0, abs=1e-9)
        assert never.memory_idle == pytest.approx(
            alpha_m * gap * n_gaps, rel=REL_TOL
        )
        # Naive sleeping must cost MORE than staying powered here: that
        # inversion is the paper's case for the break-even guard.
        assert always.memory_idle > never.memory_idle

    @pytest.mark.parametrize("backend", backends())
    def test_gap_exactly_at_break_even(self, backend):
        vectorized.set_backend(backend)
        platform = platform_with(xi_m=8.0)
        gap = 8.0  # == xi_m: sleeping and staying powered cost the same
        copies = 35
        segments = tile([seg(0, 0.0, 4.0)], copies, 4.0 + gap)
        horizon = (0.0, copies * (4.0 + gap) - gap)
        priced = assert_matches_full_path(segments, platform, horizon)
        by_policy = dict(zip(POLICIES, priced))
        # At the boundary BREAK_EVEN sleeps (gap >= xi_m) and the energy
        # equals the NEVER policy's -- the indifference point.
        be = by_policy[SleepPolicy.BREAK_EVEN]
        never = by_policy[SleepPolicy.NEVER]
        assert be.memory_idle == pytest.approx(never.memory_idle, rel=REL_TOL)
        assert be.memory_sleep_time == pytest.approx(
            gap * (copies - 1), rel=REL_TOL
        )


class TestAllCoresIdleBoundaries:
    @pytest.mark.parametrize("backend", backends())
    def test_leading_and_trailing_idle_windows(self, backend):
        vectorized.set_backend(backend)
        platform = platform_with(xi_m=8.0)
        copies = 35
        stride = 6.0
        segments = tile([seg(0, 100.0, 104.0)], copies, stride)
        busy_start = 100.0
        busy_end = 100.0 + (copies - 1) * stride + 4.0
        lead, trail = 50.0, 25.0  # both > xi_m
        horizon = (busy_start - lead, busy_end + trail)
        priced = assert_matches_full_path(segments, platform, horizon)
        by_policy = dict(zip(POLICIES, priced))
        be = by_policy[SleepPolicy.BREAK_EVEN]
        # The edge windows amortize (>= xi_m) and are slept; the interior
        # 2.0 ms gaps do not.
        assert be.memory_sleep_time == pytest.approx(
            lead + trail, rel=REL_TOL
        )
        never = by_policy[SleepPolicy.NEVER]
        assert never.memory_idle == pytest.approx(
            platform.memory.alpha_m
            * (lead + trail + 2.0 * (copies - 1)),
            rel=REL_TOL,
        )

    @pytest.mark.parametrize("backend", backends())
    def test_single_segment_wide_horizon(self, backend):
        vectorized.set_backend(backend)
        platform = platform_with()
        segments = [seg(0, 10.0, 12.0)]
        horizon = (0.0, 1000.0)
        priced = assert_matches_full_path(segments, platform, horizon)
        be = priced[0]
        assert be.memory_busy_time == pytest.approx(2.0, rel=REL_TOL)
        assert be.memory_sleep_time == pytest.approx(998.0, rel=REL_TOL)

    def test_scalar_reference_is_bit_exact_vs_account(self):
        """On the scalar path the fast accountant is *exactly* account()."""
        vectorized.set_backend("scalar")
        platform = platform_with()
        segments = tile(
            [seg(0, 0.0, 3.0), seg(1, 1.0, 4.5), seg(2, 6.0, 9.0)], 10, 11.0
        )
        horizon = (-5.0, 115.0)
        schedule = schedule_of(segments)
        for policy in POLICIES:
            (fast,) = account_segments(
                segments, platform, horizon=horizon, memory_policies=(policy,)
            )
            reference = account(
                schedule, platform, horizon=horizon, memory_policy=policy
            )
            assert fast == reference  # dataclass equality: every field
        direct = _account_segments_scalar(
            segments, platform, horizon, POLICIES, SleepPolicy.BREAK_EVEN
        )
        assert direct[0] == account(
            schedule,
            platform,
            horizon=horizon,
            memory_policy=SleepPolicy.BREAK_EVEN,
        )

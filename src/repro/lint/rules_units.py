"""Unit-consistency rule (UNT001): energy/power/time quantities stay typed.

Every quantity in this codebase is a bare ``float``: energies in uJ,
powers in mW, times in ms, frequencies in MHz, work in kilocycles.  The
paper's equations mix them constantly (``E = P * t``), and the one
mistake the type system cannot catch is *adding* or *comparing* across
dimensions -- ``uJ + mW`` is meaningless but runs fine.

:mod:`repro.units` provides a zero-cost ``@unit("uJ")`` decorator that
stamps producer functions with their unit tag.  This rule reads those
stamps *syntactically* (no imports of product code are executed):

1. a project-wide pass collects ``function name -> unit tag`` from every
   ``@unit(...)`` decorator (string literal or a ``repro.units`` constant
   such as ``UJ``);
2. inside :mod:`repro.energy` and :mod:`repro.core` functions, local
   variables assigned from tagged calls inherit the tag's dimension
   vector, ``*``/``/`` combine vectors (so ``mW * ms`` correctly derives
   an energy), and ``+``/``-``/comparisons between *different known*
   dimensions are flagged.

Anything un-inferable stays unknown and is never flagged -- the rule
reports only provable dimension mixes, accepting misses over noise.
"""

from __future__ import annotations

import ast
import re
from fractions import Fraction
from typing import Dict, Iterator, Optional, Tuple

from repro.lint.engine import (
    Finding,
    Project,
    Rule,
    SourceModule,
    SEVERITY_WARNING,
    dotted_call_name,
    register,
)
from repro.units import DIMENSIONS, SCALAR

__all__ = ["UnitMixRule", "UnitTagCoverageRule", "collect_unit_registry"]

_Dim = Tuple[Fraction, Fraction, Fraction]

#: Local names of the tag constants exported by :mod:`repro.units`,
#: resolved without importing the decorated modules.
_TAG_CONSTANTS: Dict[str, str] = {
    "UJ": "uJ",
    "MW": "mW",
    "MS": "ms",
    "MHZ": "MHz",
    "KC": "kc",
    "SCALAR": SCALAR,
}

_AMBIGUOUS = "<ambiguous>"


def _tag_for_dim(dim: _Dim) -> str:
    for tag, candidate in DIMENSIONS.items():
        if candidate == dim:
            return tag
    energy, work, time = dim
    return f"<energy^{energy} work^{work} time^{time}>"


def _decorator_tag(node: ast.expr, module: SourceModule) -> Optional[str]:
    """The unit tag named by an ``@unit(...)`` decorator, else ``None``."""
    if not isinstance(node, ast.Call) or len(node.args) != 1:
        return None
    name = dotted_call_name(node.func, module.aliases)
    if name is None or name.split(".")[-1] != "unit":
        return None
    arg = node.args[0]
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value if arg.value in DIMENSIONS else None
    dotted = dotted_call_name(arg, module.aliases)
    if dotted is not None:
        return _TAG_CONSTANTS.get(dotted.split(".")[-1])
    return None


def collect_unit_registry(project: Project) -> Dict[str, str]:
    """Map function name -> unit tag from every ``@unit`` decorator.

    Keyed by the *bare* function name because call sites use attribute
    access (``power.dynamic_power(...)``, ``self.block_energy(...)``)
    whose receiver the linter cannot type.  A name decorated with two
    different tags anywhere in the project becomes ambiguous and is
    dropped from inference.
    """
    registry: Dict[str, str] = {}
    for module in project.modules:
        if module.tree is None:
            continue
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for decorator in node.decorator_list:
                tag = _decorator_tag(decorator, module)
                if tag is None:
                    continue
                previous = registry.get(node.name)
                if previous is not None and previous != tag:
                    registry[node.name] = _AMBIGUOUS
                else:
                    registry[node.name] = tag
    return {name: tag for name, tag in registry.items() if tag != _AMBIGUOUS}


@register
class UnitMixRule(Rule):
    id = "UNT001"
    family = "units"
    severity = SEVERITY_WARNING
    description = (
        "arithmetic or comparison mixes physical dimensions (e.g. an "
        "energy in uJ added to a power in mW) without conversion"
    )
    hint = (
        "convert explicitly (mW * ms -> uJ) or tag the producer with "
        "@unit(...) from repro.units if the inference is wrong"
    )
    packages = ("repro.energy", "repro.core")

    def run(self, project: Project) -> Iterator[Finding]:
        registry = collect_unit_registry(project)
        if not registry:
            return
        for module in project.modules:
            if module.tree is None or not self.applies_to(module):
                continue
            for node in ast.walk(module.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield from self._check_function(module, node, registry)

    def _check_function(
        self,
        module: SourceModule,
        func: ast.AST,
        registry: Dict[str, str],
    ) -> Iterator[Finding]:
        env = self._infer_locals(func, module, registry)
        for node in ast.walk(func):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                left = self._dim(node.left, env, module, registry)
                right = self._dim(node.right, env, module, registry)
                if left is not None and right is not None and left != right:
                    op = "+" if isinstance(node.op, ast.Add) else "-"
                    yield self.finding(
                        module,
                        node,
                        f"dimension mix: {_tag_for_dim(left)} {op} "
                        f"{_tag_for_dim(right)}",
                    )
            elif isinstance(node, ast.Compare):
                sides = [node.left] + list(node.comparators)
                dims = [self._dim(s, env, module, registry) for s in sides]
                for a, b in zip(dims, dims[1:]):
                    if a is not None and b is not None and a != b:
                        yield self.finding(
                            module,
                            node,
                            f"dimension mix in comparison: "
                            f"{_tag_for_dim(a)} vs {_tag_for_dim(b)}",
                        )
                        break

    def _infer_locals(
        self,
        func: ast.AST,
        module: SourceModule,
        registry: Dict[str, str],
    ) -> Dict[str, _Dim]:
        """One forward pass over simple ``name = expr`` assignments.

        A name assigned two different dimensions anywhere in the function
        is demoted to unknown rather than trusted.
        """
        env: Dict[str, _Dim] = {}
        conflicted: set[str] = set()
        for node in ast.walk(func):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            dim = self._dim(node.value, env, module, registry)
            if dim is None:
                continue
            if target.id in env and env[target.id] != dim:
                conflicted.add(target.id)
            env[target.id] = dim
        for name in conflicted:
            env.pop(name, None)
        return env

    def _dim(
        self,
        node: ast.AST,
        env: Dict[str, _Dim],
        module: SourceModule,
        registry: Dict[str, str],
    ) -> Optional[_Dim]:
        """Dimension vector of an expression, or ``None`` when unknown.

        Bare numeric constants are deliberately *unknown*, not scalar:
        ``energy + 0.0`` style sentinels and literal offsets must never
        be flagged.
        """
        if isinstance(node, ast.Name):
            return env.get(node.id)
        if isinstance(node, ast.Call):
            name = dotted_call_name(node.func, module.aliases)
            if name is None:
                return None
            tag = registry.get(name.split(".")[-1])
            return DIMENSIONS.get(tag) if tag is not None else None
        if isinstance(node, ast.UnaryOp):
            return self._dim(node.operand, env, module, registry)
        if isinstance(node, ast.BinOp):
            left = self._dim(node.left, env, module, registry)
            right = self._dim(node.right, env, module, registry)
            if isinstance(node.op, (ast.Add, ast.Sub)):
                # Mixes are reported separately; the result keeps the
                # left dimension when either side is known.
                return left if left is not None else right
            if isinstance(node.op, ast.Mult):
                if left is None or right is None:
                    return None
                return (left[0] + right[0], left[1] + right[1], left[2] + right[2])
            if isinstance(node.op, ast.Div):
                if left is None or right is None:
                    return None
                return (left[0] - right[0], left[1] - right[1], left[2] - right[2])
            return None
        return None


#: Function-name segments that denote a discretization/approximation
#: quantity: tolerances (epsilon/delta), grid geometry (step, grid,
#: ladder) and the energies they bound.  Matched on whole ``_``-separated
#: name segments so ``solve_agreeable_fptas`` or ``grid_search`` helpers
#: that *return structures* are not conscripted.
_QUANTITY_SEGMENTS = re.compile(
    r"(?:^|_)(?:energy|epsilon|delta|step|grid|ladder)(?:_|$)"
)

#: The numeric-backend env var and its sanctioned accessor (the module
#: UNT002 never applies to, so no self-flagging is possible).
_NUMERIC_ENV = "REPRO_NUMERIC"
_NUMERIC_ACCESSOR_MODULE = "repro.core.vectorized"


@register
class UnitTagCoverageRule(Rule):
    id = "UNT002"
    family = "units"
    severity = SEVERITY_WARNING
    description = (
        "quantity-valued helper in a unit-tagged module (ε, grid pitch, "
        "ladder, energy) lacks an @unit(...) tag, or the module reads "
        "REPRO_NUMERIC outside the sanctioned accessor"
    )
    hint = (
        "tag the function with @unit(...) from repro.units (SCALAR for "
        "dimensionless ε), and read the backend only through "
        "repro.core.vectorized.get_backend(); scope via [tool.repro-lint] "
        "unit-tagged-modules"
    )
    #: Rescoped per run from ``[tool.repro-lint] unit-tagged-modules``.
    packages = ("repro.core.fptas",)

    def run(self, project: Project) -> Iterator[Finding]:
        self.packages = tuple(
            name
            for name in project.config.unit_tagged_modules
            if name != _NUMERIC_ACCESSOR_MODULE
        )
        yield from super().run(project)

    def check_module(
        self, module: SourceModule, project: Project
    ) -> Iterator[Finding]:
        assert module.tree is not None
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_tagged(module, node)
            else:
                yield from self._check_env_read(module, node)

    def _check_tagged(
        self, module: SourceModule, func: ast.AST
    ) -> Iterator[Finding]:
        name = func.name
        if not _QUANTITY_SEGMENTS.search(name):
            return
        for decorator in func.decorator_list:
            if _decorator_tag(decorator, module) is not None:
                return
        yield self.finding(
            module,
            func,
            f"quantity-valued function {name!r} has no @unit(...) tag; "
            "discretization quantities in unit-tagged modules must "
            "declare their dimension",
        )

    def _check_env_read(
        self, module: SourceModule, node: ast.AST
    ) -> Iterator[Finding]:
        key: Optional[ast.AST] = None
        if isinstance(node, ast.Subscript):
            if isinstance(node.ctx, ast.Load) and self._is_environ(
                node.value, module
            ):
                key = node.slice
        elif isinstance(node, ast.Call):
            name = dotted_call_name(node.func, module.aliases)
            if name == "os.getenv" and node.args:
                key = node.args[0]
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in ("get", "setdefault", "pop")
                and self._is_environ(node.func.value, module)
                and node.args
            ):
                key = node.args[0]
        if key is not None and self._is_numeric_key(key, module):
            yield self.finding(
                module,
                node,
                "unit-tagged module reads REPRO_NUMERIC directly; use "
                "repro.core.vectorized.get_backend() so tier pricing "
                "stays backend-pure",
            )

    @staticmethod
    def _is_environ(node: ast.AST, module: SourceModule) -> bool:
        name = dotted_call_name(node, module.aliases)
        return name in ("os.environ", "environ")

    @staticmethod
    def _is_numeric_key(node: ast.AST, module: SourceModule) -> bool:
        if isinstance(node, ast.Constant):
            return node.value == _NUMERIC_ENV
        name = dotted_call_name(node, module.aliases)
        if name is None:
            return False
        return name.split(".")[-1] == "BACKEND_ENV"

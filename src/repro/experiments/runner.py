"""Shared experiment plumbing: run the three policies, aggregate, render.

Every Section 8 exhibit reduces to the same inner loop -- simulate a trace
under SDEM-ON, MBKPS and MBKP over an identical horizon, average savings
across seeds -- so it lives here once.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from repro.baselines import mbkp, mbkps
from repro.core.online import SdemOnlinePolicy
from repro.models.platform import Platform
from repro.models.task import Task
from repro.sim.engine import SimulationResult, simulate

__all__ = [
    "ComparisonPoint",
    "SeriesResult",
    "compare_policies",
    "write_csv",
    "render_ascii_chart",
]


@dataclass(frozen=True)
class ComparisonPoint:
    """Averaged three-way comparison at one parameter point.

    Savings are relative to MBKP, as in Figures 6-7:
    ``saving = (1 - E_algo / E_mbkp) * 100`` (percent).
    ``sdem_saving_samples`` carries the per-seed system savings so reports
    can state the spread (the paper reports means only).
    """

    label: str
    sdem_total: float
    mbkps_total: float
    mbkp_total: float
    sdem_memory: float
    mbkps_memory: float
    mbkp_memory: float
    sdem_saving_samples: Tuple[float, ...] = ()

    @property
    def sdem_system_saving(self) -> float:
        return (1.0 - self.sdem_total / self.mbkp_total) * 100.0

    @property
    def mbkps_system_saving(self) -> float:
        return (1.0 - self.mbkps_total / self.mbkp_total) * 100.0

    @property
    def sdem_memory_saving(self) -> float:
        return (1.0 - self.sdem_memory / self.mbkp_memory) * 100.0

    @property
    def mbkps_memory_saving(self) -> float:
        return (1.0 - self.mbkps_memory / self.mbkp_memory) * 100.0

    @property
    def sdem_vs_mbkps_improvement(self) -> float:
        """The paper's headline metric: SDEM-ON's saving over MBKPS."""
        return (1.0 - self.sdem_total / self.mbkps_total) * 100.0

    def saving_spread(self):
        """Per-seed spread of SDEM-ON's saving vs MBKP (95% CI helper).

        Returns a :class:`repro.analysis.stats.SampleStats` or ``None``
        when per-seed samples were not recorded.
        """
        if not self.sdem_saving_samples:
            return None
        from repro.analysis.stats import summarize

        return summarize(self.sdem_saving_samples)


@dataclass
class SeriesResult:
    """One exhibit's worth of comparison points."""

    name: str
    points: List[ComparisonPoint] = field(default_factory=list)

    def rows(self) -> List[Dict[str, float | str]]:
        out: List[Dict[str, float | str]] = []
        for p in self.points:
            row: Dict[str, float | str] = {
                "point": p.label,
                "sdem_system_saving_pct": round(p.sdem_system_saving, 3),
                "mbkps_system_saving_pct": round(p.mbkps_system_saving, 3),
                "sdem_memory_saving_pct": round(p.sdem_memory_saving, 3),
                "mbkps_memory_saving_pct": round(p.mbkps_memory_saving, 3),
                "sdem_vs_mbkps_pct": round(p.sdem_vs_mbkps_improvement, 3),
                "sdem_total_uj": round(p.sdem_total, 1),
                "mbkps_total_uj": round(p.mbkps_total, 1),
                "mbkp_total_uj": round(p.mbkp_total, 1),
            }
            spread = p.saving_spread()
            row["sdem_saving_ci95_pct"] = (
                round(spread.ci95_halfwidth, 3) if spread is not None else ""
            )
            out.append(row)
        return out

    def mean_improvement(self) -> float:
        """Average SDEM-ON vs MBKPS system-energy improvement (percent)."""
        if not self.points:
            return 0.0
        return sum(p.sdem_vs_mbkps_improvement for p in self.points) / len(
            self.points
        )


def compare_policies(
    label: str,
    trace_factory: Callable[[int], Sequence[Task]],
    platform: Platform,
    *,
    seeds: int,
) -> ComparisonPoint:
    """Average SDEM-ON / MBKPS / MBKP over ``seeds`` traces.

    ``trace_factory(seed)`` must return a fresh trace; all three policies
    see the *same* trace and horizon per seed.
    """
    sums = {"sdem": 0.0, "mbkps": 0.0, "mbkp": 0.0}
    mems = {"sdem": 0.0, "mbkps": 0.0, "mbkp": 0.0}
    saving_samples = []
    for seed in range(seeds):
        trace = list(trace_factory(seed))
        horizon = (
            min(t.release for t in trace),
            max(t.deadline for t in trace),
        )
        runs = {
            "sdem": simulate(
                SdemOnlinePolicy(platform), trace, platform, horizon=horizon
            ),
            "mbkps": simulate(mbkps(platform), trace, platform, horizon=horizon),
            "mbkp": simulate(mbkp(platform), trace, platform, horizon=horizon),
        }
        for key, result in runs.items():
            sums[key] += result.breakdown.total
            mems[key] += result.breakdown.memory_total
        saving_samples.append(
            (1.0 - runs["sdem"].breakdown.total / runs["mbkp"].breakdown.total)
            * 100.0
        )
    return ComparisonPoint(
        label=label,
        sdem_total=sums["sdem"] / seeds,
        mbkps_total=sums["mbkps"] / seeds,
        mbkp_total=sums["mbkp"] / seeds,
        sdem_memory=mems["sdem"] / seeds,
        mbkps_memory=mems["mbkps"] / seeds,
        mbkp_memory=mems["mbkp"] / seeds,
        sdem_saving_samples=tuple(saving_samples),
    )


def write_csv(series: SeriesResult, path: str) -> None:
    """Write an exhibit's rows to a CSV file."""
    rows = series.rows()
    if not rows:
        raise ValueError(f"series {series.name!r} has no points")
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(rows[0]))
        writer.writeheader()
        writer.writerows(rows)


def render_ascii_chart(
    title: str,
    points: Sequence[Tuple[str, Dict[str, float]]],
    *,
    width: int = 50,
) -> str:
    """Render grouped horizontal bars (one group per x-axis point).

    ``points`` is ``[(label, {series: value}), ...]``; values are percent
    savings, clamped at 0 for display.
    """
    out = io.StringIO()
    out.write(f"{title}\n")
    all_values = [v for _, series in points for v in series.values()]
    top = max(max(all_values, default=1.0), 1e-9)
    for label, series in points:
        out.write(f"  {label}\n")
        for name, value in series.items():
            filled = int(round(max(value, 0.0) / top * width))
            out.write(
                f"    {name:<10s} |{'#' * filled}{' ' * (width - filled)}| "
                f"{value:7.2f}%\n"
            )
    return out.getvalue()

"""Tests for the single-block local optimum (Sections 5.1.1 / 5.2.1)."""

from __future__ import annotations

import random

import pytest

from repro.core.blocks import block_energy, solve_block
from repro.core.reference import (
    block_energy_alpha_nonzero,
    block_energy_alpha_zero,
    reference_block,
)
from repro.energy import account
from repro.models import CorePowerModel, MemoryModel, Platform, Task, TaskSet
from repro.schedule import validate_schedule


def make_platform(alpha: float, alpha_m: float = 10.0, s_up: float = 1000.0):
    return Platform(
        CorePowerModel(beta=1e-6, lam=3.0, alpha=alpha, s_up=s_up),
        MemoryModel(alpha_m=alpha_m),
    )


def random_agreeable_tasks(rng: random.Random, n: int) -> TaskSet:
    """Agreeable set: releases sorted, deadline offsets sorted too."""
    releases = sorted(rng.uniform(0.0, 60.0) for _ in range(n))
    deadlines = []
    last_d = 0.0
    for r in releases:
        d = max(r + rng.uniform(5.0, 60.0), last_d + rng.uniform(0.1, 5.0))
        deadlines.append(d)
        last_d = d
    return TaskSet(
        Task(r, d, rng.uniform(50.0, 3000.0))
        for r, d in zip(releases, deadlines)
    )


class TestBlockEnergyFunction:
    def test_matches_reference_alpha_zero(self):
        platform = make_platform(0.0)
        ts = TaskSet([Task(0, 20, 500.0), Task(5, 30, 800.0)])
        for s, e in [(0.0, 30.0), (2.0, 25.0), (4.0, 28.0)]:
            assert block_energy(ts, platform, s, e) == pytest.approx(
                block_energy_alpha_zero(ts, platform, s, e), rel=1e-12
            )

    def test_matches_reference_alpha_nonzero(self):
        platform = make_platform(2.0)
        ts = TaskSet([Task(0, 20, 500.0), Task(5, 30, 800.0)])
        for s, e in [(0.0, 30.0), (2.0, 25.0), (4.0, 28.0)]:
            assert block_energy(ts, platform, s, e) == pytest.approx(
                block_energy_alpha_nonzero(ts, platform, s, e), rel=1e-12
            )

    def test_infeasible_interval_is_penalized(self):
        platform = make_platform(0.0)
        ts = TaskSet([Task(0, 20, 500.0)])
        assert block_energy(ts, platform, 10.0, 5.0) >= 1e29
        # Window shorter than w/s_up = 0.5 ms:
        assert block_energy(ts, platform, 19.8, 20.0) >= 1e29


class TestSolveBlockAlphaZero:
    @pytest.mark.parametrize("method", ["descent", "pairs"])
    def test_single_task_matches_section4(self, method):
        """One task alone: block optimum = the Section 4.1 single-task form.

        Busy length b* = (2 beta w^3 / alpha_m)^(1/3), anchored at the
        deadline side or anywhere (energy depends only on the length).
        """
        platform = make_platform(0.0)
        w, d = 1000.0, 100.0
        ts = TaskSet([Task(0.0, d, w)])
        sol = solve_block(ts, platform, method=method)
        busy_star = (2.0 * 1e-6 * w**3 / 10.0) ** (1.0 / 3.0)
        assert sol.length == pytest.approx(busy_star, rel=1e-4)

    @pytest.mark.parametrize("method", ["descent", "pairs"])
    def test_matches_numeric_reference(self, method):
        platform = make_platform(0.0)
        rng = random.Random(3)
        for _ in range(6):
            ts = random_agreeable_tasks(rng, rng.randint(1, 5))
            sol = solve_block(ts, platform, method=method)
            _, _, ref = reference_block(ts, platform, grid=100)
            assert sol.energy == pytest.approx(ref, rel=2e-3)
            # Never worse than the grid reference beyond tolerance.
            assert sol.energy <= ref * (1.0 + 1e-6) + 1e-9

    def test_descent_and_pairs_agree(self):
        platform = make_platform(0.0)
        rng = random.Random(17)
        for _ in range(8):
            ts = random_agreeable_tasks(rng, rng.randint(1, 6))
            a = solve_block(ts, platform, method="descent")
            b = solve_block(ts, platform, method="pairs")
            assert a.energy == pytest.approx(b.energy, rel=1e-5)

    def test_schedule_feasible_and_priced_consistently(self):
        platform = make_platform(0.0)
        rng = random.Random(5)
        for _ in range(5):
            ts = random_agreeable_tasks(rng, rng.randint(1, 6))
            sol = solve_block(ts, platform)
            sched = sol.schedule()
            validate_schedule(sched, ts, max_speed=1000.0, require_non_preemptive=True)
            bd = account(
                sched, platform, horizon=(ts.earliest_release, ts.latest_deadline)
            )
            # Inside one block the memory busy union may be shorter than
            # [start, end] only if executions do not tile it; the block
            # model charges the full interval, so account() <= predicted.
            assert bd.total <= sol.energy * (1.0 + 1e-9) + 1e-9

    def test_rejects_non_agreeable(self):
        platform = make_platform(0.0)
        nested = TaskSet([Task(0, 30, 10, "a"), Task(5, 10, 10, "b")])
        with pytest.raises(ValueError, match="agreeable"):
            solve_block(nested, platform)


class TestSolveBlockAlphaNonzero:
    @pytest.mark.parametrize("method", ["descent", "pairs"])
    def test_matches_numeric_reference(self, method):
        platform = make_platform(2.0)
        rng = random.Random(11)
        for _ in range(6):
            ts = random_agreeable_tasks(rng, rng.randint(1, 5))
            sol = solve_block(ts, platform, method=method)
            _, _, ref = reference_block(ts, platform, grid=100)
            assert sol.energy == pytest.approx(ref, rel=2e-3)
            assert sol.energy <= ref * (1.0 + 1e-6) + 1e-9

    def test_descent_and_pairs_agree(self):
        platform = make_platform(2.0)
        rng = random.Random(29)
        for _ in range(6):
            ts = random_agreeable_tasks(rng, rng.randint(1, 5))
            a = solve_block(ts, platform, method="descent")
            b = solve_block(ts, platform, method="pairs")
            assert a.energy == pytest.approx(b.energy, rel=1e-4)

    def test_type1_tasks_run_at_critical_speed(self):
        """A slack task inside a long block must run at exactly s_0."""
        platform = make_platform(alpha=2.0, alpha_m=100.0)
        core = platform.core
        # Two urgent heavy tasks pin the block; the middle one has slack.
        ts = TaskSet(
            [
                Task(0.0, 10.0, 5000.0, "head"),
                Task(1.0, 90.0, 100.0, "slack"),
                Task(80.0, 95.0, 5000.0, "tail"),
            ]
        )
        sol = solve_block(ts, platform)
        slack_placement = {p.name: p for p in sol.placements}["slack"]
        s0 = core.s0(ts.tasks[1] if ts.tasks[1].name == "slack" else ts.tasks[0])
        slack_task = next(t for t in ts if t.name == "slack")
        assert slack_placement.speed == pytest.approx(core.s0(slack_task), rel=1e-6)

    def test_schedule_feasible(self):
        platform = make_platform(2.0)
        rng = random.Random(31)
        for _ in range(5):
            ts = random_agreeable_tasks(rng, rng.randint(1, 6))
            sol = solve_block(ts, platform)
            validate_schedule(
                sol.schedule(), ts, max_speed=1000.0, require_non_preemptive=True
            )

    def test_high_memory_power_compresses_block(self):
        """Raising alpha_m must never lengthen the optimal block."""
        ts = TaskSet([Task(0, 50, 2000.0), Task(10, 80, 1500.0)])
        lengths = []
        for alpha_m in [1.0, 10.0, 100.0, 1000.0]:
            platform = make_platform(alpha=2.0, alpha_m=alpha_m)
            lengths.append(solve_block(ts, platform).length)
        assert all(a >= b - 1e-6 for a, b in zip(lengths, lengths[1:]))


class TestBlockMemoization:
    def test_block_energy_cache_hit_returns_same_value(self):
        from repro.core.blocks import (
            block_energy_cache_clear,
            block_energy_cache_info,
        )

        block_energy_cache_clear()
        platform = make_platform(2.0)
        ts = TaskSet([Task(0, 20, 500.0), Task(5, 30, 800.0)])
        first = block_energy(ts, platform, 0.0, 30.0)
        info_after_miss = block_energy_cache_info()
        second = block_energy(ts, platform, 0.0, 30.0)
        info_after_hit = block_energy_cache_info()
        assert second == first
        assert info_after_hit["energy_hits"] == info_after_miss["energy_hits"] + 1

    def test_equal_content_different_identity_hits(self):
        # Two distinct TaskSet objects with identical windows/workloads
        # share cache entries (keys are content signatures, not ids).
        from repro.core.blocks import block_energy_cache_clear, block_energy_cache_info

        block_energy_cache_clear()
        platform = make_platform(0.0)
        a = TaskSet([Task(0, 20, 500.0)])
        b = TaskSet([Task(0, 20, 500.0)])
        assert block_energy(a, platform, 0.0, 20.0) == block_energy(
            b, platform, 0.0, 20.0
        )
        assert block_energy_cache_info()["energy_hits"] >= 1

    def test_solve_block_memoized_solution_identical(self):
        from repro.core.blocks import block_energy_cache_clear

        block_energy_cache_clear()
        platform = make_platform(2.0)
        ts = TaskSet([Task(0, 20, 500.0), Task(5, 30, 800.0)])
        first = solve_block(ts, platform)
        second = solve_block(ts, platform)
        assert second.energy == first.energy
        assert second.start == first.start
        assert second.end == first.end

    def test_invalid_method_still_rejected(self):
        platform = make_platform(2.0)
        ts = TaskSet([Task(0, 20, 500.0)])
        with pytest.raises(ValueError):
            solve_block(ts, platform, method="nope")

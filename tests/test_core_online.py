"""Tests for the SDEM-ON online heuristic (Section 6)."""

from __future__ import annotations

import random

import pytest

from repro.baselines import MbkpPolicy, mbkp, mbkps
from repro.core import SdemOnlinePolicy, solve_common_release
from repro.energy import SleepPolicy
from repro.models import CorePowerModel, MemoryModel, Platform, Task, TaskSet
from repro.sim import simulate


def make_platform(alpha=0.0, alpha_m=20.0, xi_m=0.0, num_cores=8):
    return Platform(
        CorePowerModel(beta=1e-6, lam=3.0, alpha=alpha, s_up=1000.0),
        MemoryModel(alpha_m=alpha_m, xi_m=xi_m),
        num_cores=num_cores,
    )


def sporadic_tasks(rng: random.Random, n: int, max_gap: float) -> list:
    tasks = []
    t = 0.0
    for i in range(n):
        t += rng.uniform(0.0, max_gap)
        span = rng.uniform(10.0, 120.0)
        tasks.append(Task(t, t + span, rng.uniform(2000.0, 5000.0), f"J{i}"))
    return tasks


class TestSdemOnSingleArrival:
    def test_matches_offline_optimum_for_common_release(self):
        """With one arrival batch, SDEM-ON equals the Section 4 optimum."""
        platform = make_platform(alpha=0.0)
        tasks = [
            Task(0.0, 40.0, 800.0, "a"),
            Task(0.0, 70.0, 1500.0, "b"),
            Task(0.0, 100.0, 400.0, "c"),
        ]
        result = simulate(SdemOnlinePolicy(platform), tasks, platform)
        offline = solve_common_release(TaskSet(tasks), platform)
        assert result.total_energy == pytest.approx(
            offline.predicted_energy, rel=1e-6
        )

    def test_procrastinates_to_align_with_deadline(self):
        """A single task is pushed right against its deadline."""
        platform = make_platform(alpha=0.0, alpha_m=1e-9)
        tasks = [Task(0.0, 100.0, 1000.0, "a")]
        result = simulate(SdemOnlinePolicy(platform), tasks, platform)
        iv = result.schedule.all_intervals()
        # alpha_m ~ 0: run at filled speed over the whole region -- but the
        # online rule starts at the latest start time, which equals 0 here.
        assert iv[0].end == pytest.approx(100.0, rel=1e-6)

    def test_sleep_first_when_memory_hungry(self):
        """With expensive memory, execution is compressed and postponed."""
        platform = make_platform(alpha=0.0, alpha_m=1e6)
        tasks = [Task(0.0, 100.0, 1000.0, "a")]
        result = simulate(SdemOnlinePolicy(platform), tasks, platform)
        iv = result.schedule.all_intervals()
        assert iv[0].speed == pytest.approx(1000.0, rel=1e-3)  # s_up
        assert iv[0].start == pytest.approx(99.0, rel=1e-3)  # d - w/s_up
        assert iv[0].end == pytest.approx(100.0, rel=1e-6)


class TestSdemOnDynamics:
    @pytest.mark.parametrize("alpha", [0.0, 310.0])
    def test_feasible_on_random_sporadic_traces(self, alpha):
        rng = random.Random(61)
        platform = make_platform(alpha=alpha, alpha_m=4000.0)
        for _ in range(5):
            tasks = sporadic_tasks(rng, rng.randint(2, 12), max_gap=60.0)
            result = simulate(SdemOnlinePolicy(platform), tasks, platform)
            assert result.total_energy > 0.0  # validation happened inside

    def test_arrival_during_sleep_triggers_replan(self):
        """A second arrival during the sleep window joins the same batch."""
        platform = make_platform(alpha=0.0, alpha_m=1e6)
        tasks = [
            Task(0.0, 100.0, 1000.0, "a"),
            Task(5.0, 104.0, 1000.0, "b"),
        ]
        result = simulate(SdemOnlinePolicy(platform), tasks, platform)
        spans = {iv.task: iv for iv in result.schedule.all_intervals()}
        # Both compressed near their deadlines; executions overlap heavily.
        overlap = min(spans["a"].end, spans["b"].end) - max(
            spans["a"].start, spans["b"].start
        )
        assert overlap > 0.5

    def test_arrival_mid_execution_preempts(self):
        platform = make_platform(alpha=0.0, alpha_m=20.0)
        tasks = [
            Task(0.0, 30.0, 3000.0, "a"),
            Task(10.0, 60.0, 3000.0, "b"),
        ]
        result = simulate(SdemOnlinePolicy(platform), tasks, platform)
        a_pieces = [iv for iv in result.schedule.all_intervals() if iv.task == "a"]
        assert sum(p.workload for p in a_pieces) == pytest.approx(3000.0, rel=1e-6)

    def test_with_transition_overheads_uses_section7_solver(self):
        platform = make_platform(alpha=310.0, alpha_m=4000.0, xi_m=40.0)
        rng = random.Random(71)
        tasks = sporadic_tasks(rng, 6, max_gap=80.0)
        result = simulate(SdemOnlinePolicy(platform), tasks, platform)
        assert result.total_energy > 0.0

    def test_duplicate_names_rejected(self):
        platform = make_platform()
        policy = SdemOnlinePolicy(platform)
        with pytest.raises(ValueError, match="duplicate"):
            simulate(
                policy,
                [Task(0.0, 10.0, 10.0, "x"), Task(1.0, 20.0, 10.0, "x")],
                platform,
            )


class TestBaselinesBehaviour:
    def test_mbkp_round_robin_assignment(self):
        platform = make_platform(num_cores=2)
        tasks = [
            Task(0.0, 100.0, 1000.0, "a"),
            Task(0.0, 100.0, 1000.0, "b"),
            Task(0.0, 100.0, 1000.0, "c"),
        ]
        result = simulate(mbkp(platform), tasks, platform)
        # Three tasks over two cores: core 0 gets a and c.
        core0 = {iv.task for iv in result.schedule.cores[0]}
        assert core0 == {"a", "c"}

    def test_mbkp_memory_never_sleeps(self):
        platform = make_platform(alpha_m=100.0)
        tasks = [Task(0.0, 100.0, 1000.0, "a")]
        result = simulate(mbkp(platform), tasks, platform)
        assert result.breakdown.memory_sleep_time == 0.0

    def test_mbkps_sleeps_every_gap(self):
        platform = make_platform(alpha_m=100.0, xi_m=5.0)
        # OA fills [0, 50] and [60, 100]; the [50, 60] gap is the test.
        tasks = [Task(0.0, 50.0, 1000.0, "a"), Task(60.0, 100.0, 1000.0, "b")]
        r_mbkp = simulate(mbkp(platform), tasks, platform)
        r_mbkps = simulate(mbkps(platform), tasks, platform)
        assert r_mbkp.breakdown.memory_sleep_time == 0.0
        assert r_mbkps.breakdown.memory_sleep_time == pytest.approx(10.0)
        assert r_mbkps.total_energy < r_mbkp.total_energy

    def test_mbkp_oa_stretches_over_slack(self):
        """OA runs a lone task at its filled speed from its release."""
        platform = make_platform()
        tasks = [Task(0.0, 100.0, 1000.0, "a")]
        result = simulate(mbkp(platform), tasks, platform)
        iv = result.schedule.all_intervals()[0]
        assert iv.speed == pytest.approx(10.0, rel=1e-9)
        assert iv.start == pytest.approx(0.0)
        assert iv.end == pytest.approx(100.0)

    def test_sdem_on_beats_mbkps_on_staggered_arrivals(self):
        """The headline comparison: SDEM-ON beats both baselines.

        Note MBKPS is *not* always better than MBKP: with a 40 ms
        break-even time, naively sleeping through short scattered gaps
        wastes transition energy -- exactly the behaviour the paper
        criticises MBKPS for.
        """
        platform = make_platform(alpha=310.0, alpha_m=4000.0, xi_m=40.0)
        rng = random.Random(17)
        for _ in range(5):
            tasks = sporadic_tasks(rng, 8, max_gap=50.0)
            e_on = simulate(SdemOnlinePolicy(platform), tasks, platform).total_energy
            e_s = simulate(mbkps(platform), tasks, platform).total_energy
            e_p = simulate(mbkp(platform), tasks, platform).total_energy
            assert e_on < e_s
            assert e_on < e_p

    def test_mbkps_matches_mbkp_with_free_transitions(self):
        """With xi_m = 0, sleeping every gap can only help."""
        platform = make_platform(alpha=310.0, alpha_m=4000.0, xi_m=0.0)
        rng = random.Random(19)
        for _ in range(4):
            tasks = sporadic_tasks(rng, 6, max_gap=60.0)
            e_s = simulate(mbkps(platform), tasks, platform).total_energy
            e_p = simulate(mbkp(platform), tasks, platform).total_energy
            assert e_s <= e_p * (1.0 + 1e-9)

    def test_least_loaded_assignment_option(self):
        platform = make_platform(num_cores=2)
        policy = MbkpPolicy(platform, assignment="least_loaded")
        tasks = [
            Task(0.0, 100.0, 5000.0, "heavy"),
            Task(0.0, 100.0, 100.0, "light"),
            Task(0.0, 100.0, 100.0, "light2"),
        ]
        result = simulate(policy, tasks, platform)
        # 'light2' must land on the core that got 'light', not 'heavy'.
        core_of = {}
        for idx, core in enumerate(result.schedule.cores):
            for iv in core:
                core_of[iv.task] = idx
        assert core_of["light2"] == core_of["light"]


class TestCrrAssignment:
    def test_crr_spreads_same_class_jobs(self):
        """Equal-density jobs round-robin across cores within their class."""
        platform = make_platform(num_cores=2)
        policy = MbkpPolicy(platform, assignment="crr")
        tasks = [
            Task(0.0, 100.0, 1000.0, "a"),  # density 10 -> class 3
            Task(0.0, 100.0, 1000.0, "b"),  # same class
            Task(0.0, 10.0, 5000.0, "hot"),  # density 500 -> class 8
        ]
        result = simulate(policy, tasks, platform)
        core_of = {}
        for idx, core in enumerate(result.schedule.cores):
            for iv in core:
                core_of.setdefault(iv.task, idx)
        # a and b land on different cores; "hot" starts a fresh class at 0.
        assert core_of["a"] != core_of["b"]
        assert core_of["hot"] == core_of["a"]

    def test_crr_feasible_on_random_traces(self):
        import random as _random

        platform = make_platform(num_cores=8)
        rng = _random.Random(77)
        for _ in range(4):
            tasks = sporadic_tasks(rng, 10, max_gap=60.0)
            result = simulate(
                MbkpPolicy(platform, assignment="crr"), tasks, platform
            )
            assert result.total_energy > 0.0

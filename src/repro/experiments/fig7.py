"""Figure 7 reproduction: synthetic sporadic tasks over parameter grids.

* **Fig. 7a** -- system-wide energy-saving improvement over the grid
  (memory static power ``alpha_m`` in 1..8 W) x (max inter-arrival ``x``
  in 100..800 ms), ``xi_m`` fixed at its Table 4 star (40 ms);
* **Fig. 7b** -- same over (``xi_m`` in 15..70 ms) x (``x``), ``alpha_m``
  fixed at 4 W.

Reported paper numbers: SDEM-ON improves on MBKPS by 9.74% on average in
7a and 10.52% in 7b; the improvement is essentially flat in ``xi_m`` and
MBKPS degenerates to MBKP as utilization rises (``x -> 100 ms``).

Each grid cell is a :class:`SyntheticTraceSpec` with the historical seed
mapping ``seed * 7919 + int(x)``, so results are unchanged from the old
per-cell lambdas while remaining picklable for the parallel engine and
hashable for the result cache.
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.cache import ResultCache
from repro.experiments.config import (
    ALPHA_M_SWEEP_MW,
    DEFAULT_ALPHA_M_MW,
    DEFAULT_SEEDS,
    DEFAULT_TRACE_LENGTH,
    DEFAULT_XI_M_MS,
    X_SWEEP_MS,
    XI_M_SWEEP_MS,
    experiment_platform,
)
from repro.experiments.parallel import PointSpec, SyntheticTraceSpec, run_series
from repro.experiments.runner import SeriesResult

__all__ = ["fig7_grid_specs", "run_fig7a", "run_fig7b"]


def fig7_grid_specs(
    memory_points: List[tuple[float, float]],
    x_values: List[float],
    *,
    trace_length: int,
) -> List[PointSpec]:
    """The Fig. 7 grid as work specs.

    ``memory_points`` are ``(alpha_m, xi_m)`` pairs; every pair is crossed
    with every ``x``.
    """
    specs: List[PointSpec] = []
    for alpha_m, xi_m in memory_points:
        platform = experiment_platform(alpha_m=alpha_m, xi_m=xi_m)
        for x in x_values:
            specs.append(
                PointSpec(
                    label=(
                        f"alpha_m={alpha_m / 1000.0:g}W "
                        f"xi_m={xi_m:g}ms x={x:g}ms"
                    ),
                    trace_factory=SyntheticTraceSpec(
                        n=trace_length,
                        max_interarrival=x,
                        seed_stride=7919,
                        seed_offset=int(x),
                    ),
                    platform=platform,
                )
            )
    return specs


def _grid_run(
    name: str,
    memory_points: List[tuple[float, float]],
    x_values: List[float],
    *,
    seeds: int,
    trace_length: int,
    max_workers: Optional[int],
    cache: Optional[ResultCache],
) -> SeriesResult:
    """Shared Fig. 7 grid sweep."""
    specs = fig7_grid_specs(memory_points, x_values, trace_length=trace_length)
    return run_series(
        name, specs, seeds=seeds, max_workers=max_workers, cache=cache
    )


def run_fig7a(
    *,
    alpha_m_values: List[float] | None = None,
    x_values: List[float] | None = None,
    seeds: int = DEFAULT_SEEDS,
    trace_length: int = DEFAULT_TRACE_LENGTH,
    max_workers: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
) -> SeriesResult:
    """Fig. 7a: sweep memory static power x utilization."""
    alpha_m_values = (
        alpha_m_values if alpha_m_values is not None else ALPHA_M_SWEEP_MW
    )
    x_values = x_values if x_values is not None else X_SWEEP_MS
    return _grid_run(
        "fig7a",
        [(a, DEFAULT_XI_M_MS) for a in alpha_m_values],
        x_values,
        seeds=seeds,
        trace_length=trace_length,
        max_workers=max_workers,
        cache=cache,
    )


def run_fig7b(
    *,
    xi_m_values: List[float] | None = None,
    x_values: List[float] | None = None,
    seeds: int = DEFAULT_SEEDS,
    trace_length: int = DEFAULT_TRACE_LENGTH,
    max_workers: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
) -> SeriesResult:
    """Fig. 7b: sweep memory transition overhead x utilization."""
    xi_m_values = xi_m_values if xi_m_values is not None else XI_M_SWEEP_MS
    x_values = x_values if x_values is not None else X_SWEEP_MS
    return _grid_run(
        "fig7b",
        [(DEFAULT_ALPHA_M_MW, x) for x in xi_m_values],
        x_values,
        seeds=seeds,
        trace_length=trace_length,
        max_workers=max_workers,
        cache=cache,
    )

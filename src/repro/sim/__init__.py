"""Event-driven online scheduling simulation.

The engine replays an arrival trace against any :class:`OnlinePolicy`
(SDEM-ON, the MBKP/MBKPS baselines, race-to-idle, ...), collecting the
execution intervals each policy emits into a system
:class:`~repro.schedule.timeline.Schedule` that the shared energy
accountant then prices.  Policies see only the past: the engine reveals a
task exactly at its release time.
"""

from repro.sim.engine import OnlinePolicy, SimulationResult, simulate
from repro.sim.cores import CoreAllocator

__all__ = ["OnlinePolicy", "SimulationResult", "simulate", "CoreAllocator"]

"""Replay harness tests: in-process sink, percentiles, SLO ramp, digest.

The byte-reproducibility test here is the tier-1 guard for the ISSUE's
acceptance criterion (the 10^5-job version runs in the streaming bench
slice; the same code path is pinned here at CI-friendly size).
"""

from __future__ import annotations

import math

import pytest

from repro.experiments.config import experiment_platform
from repro.replay import (
    ArrivalSpec,
    LatencyStats,
    ReplayReport,
    find_max_sustainable_rate,
    open_loop_latency_ms,
    percentile,
    replay_inprocess,
    run_replay,
    table_digest,
)


@pytest.fixture(scope="module")
def platform():
    return experiment_platform()


class TestPercentile:
    def test_exact_order_statistics(self):
        values = list(range(1, 101))  # 1..100
        assert percentile(values, 50.0) == 50
        assert percentile(values, 99.0) == 99
        assert percentile(values, 100.0) == 100
        assert percentile(values, 0.0) == 1

    def test_empty_is_nan(self):
        assert math.isnan(percentile([], 50.0))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)

    def test_latency_stats_fields(self):
        stats = LatencyStats.from_values([float(v) for v in range(1, 1001)])
        assert stats.count == 1000
        assert stats.p50_ms == 500.0
        assert stats.p99_ms == 990.0
        assert stats.p99_9_ms == 999.0
        assert stats.max_ms == 1000.0
        assert stats.mean_ms == pytest.approx(500.5)
        assert LatencyStats.from_values([]) is None


class TestOpenLoopRecursion:
    def test_no_queueing_when_sparse(self):
        # Arrivals far apart: each latency is its own service time.
        latencies = open_loop_latency_ms([0.0, 100.0, 200.0], [5.0, 6.0, 7.0])
        assert latencies == [5.0, 6.0, 7.0]

    def test_queueing_accumulates_under_overload(self):
        # Simultaneous arrivals on one server: waits stack up.
        latencies = open_loop_latency_ms([0.0, 0.0, 0.0], [10.0, 10.0, 10.0])
        assert latencies == [10.0, 20.0, 30.0]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            open_loop_latency_ms([0.0], [1.0, 2.0])


class TestInprocessSink:
    def test_feasible_rate_all_done_no_misses(self, platform):
        spec = ArrivalSpec(mode="poisson", n=400, rate_jobs_s=50.0, seed=2)
        report = run_replay(spec, platform)
        assert report.counts["done"] == 400
        assert report.counts["shed"] == 0
        assert report.counts["deadline_miss"] == 0
        assert report.virtual is not None and report.virtual.count == 400
        assert report.energy is not None
        assert report.energy["per_job_uj"] > 0.0

    def test_byte_reproducible_digest(self, platform):
        spec = ArrivalSpec(mode="poisson", n=2000, rate_jobs_s=80.0, seed=1)
        first = run_replay(spec, platform)
        second = run_replay(spec, platform)
        assert first.digest == second.digest
        # The digest covers the whole canonical table, not just stats.
        rows_a = [r.canonical_row() for r in first.records]
        rows_b = [r.canonical_row() for r in second.records]
        assert rows_a == rows_b

    def test_digest_sensitive_to_seed(self, platform):
        base = ArrivalSpec(mode="poisson", n=200, rate_jobs_s=80.0, seed=1)
        other = ArrivalSpec(mode="poisson", n=200, rate_jobs_s=80.0, seed=2)
        assert (
            run_replay(base, platform).digest
            != run_replay(other, platform).digest
        )

    def test_backlog_cap_sheds_deterministically(self, platform):
        spec = ArrivalSpec(mode="mmpp", n=800, rate_jobs_s=600.0, seed=3)
        report = run_replay(spec, platform, max_backlog=8)
        assert report.counts["shed"] > 0
        assert report.max_backlog_seen <= 8
        # Shed rows carry no latency and are flagged in the table.
        shed_rows = [r for r in report.records if r.status == "shed"]
        assert shed_rows and all(math.isnan(r.latency_ms) for r in shed_rows)
        repeat = run_replay(spec, platform, max_backlog=8)
        assert repeat.counts["shed"] == report.counts["shed"]
        assert repeat.digest == report.digest

    def test_virtual_latency_within_span(self, platform):
        """Admitted jobs finish inside their feasible window: the online
        relaxation procrastinates but never past a latest start."""
        spec = ArrivalSpec(mode="poisson", n=300, rate_jobs_s=100.0, seed=5)
        report = run_replay(spec, platform)
        for record in report.records:
            assert record.deadline_met
            assert record.finish_ms <= record.deadline_ms + 1e-6
            assert record.queue_wait_ms >= 0.0
            assert record.latency_ms >= record.queue_wait_ms

    def test_trace_mode_replays_common_release(self, platform):
        from repro.models import Task

        trace = tuple(
            Task(0.0, 40.0 + 20.0 * i, 3000.0, f"t{i}") for i in range(4)
        )
        spec = ArrivalSpec(mode="trace", n=4, trace_tasks=trace)
        report = run_replay(spec, platform)
        assert report.counts["done"] == 4
        assert report.counts["deadline_miss"] == 0

    def test_empty_and_bad_args_rejected(self, platform):
        with pytest.raises(ValueError):
            replay_inprocess([], platform)
        jobs = ArrivalSpec(n=3, seed=1).jobs()
        with pytest.raises(ValueError):
            replay_inprocess(jobs, platform, max_backlog=0)
        with pytest.raises(ValueError):
            run_replay(ArrivalSpec(n=3, seed=1), platform, sink="mystery")

    def test_service_sink_requires_endpoint(self, platform):
        with pytest.raises(ValueError):
            run_replay(ArrivalSpec(n=3, seed=1), platform, sink="service")


class TestReport:
    def test_wire_roundtrips_json(self, platform):
        import json

        spec = ArrivalSpec(mode="poisson", n=100, rate_jobs_s=60.0, seed=9)
        report = run_replay(spec, platform)
        wire = report.to_wire(include_records=True)
        assert json.loads(json.dumps(wire))["counts"]["done"] == 100
        assert len(wire["records"]) == 100
        assert "records" not in report.to_wire()

    def test_render_mentions_key_figures(self, platform):
        spec = ArrivalSpec(mode="poisson", n=50, rate_jobs_s=60.0, seed=9)
        text = run_replay(spec, platform).render()
        assert "uJ/job" in text
        assert "p99" in text
        assert "digest" in text

    def test_table_digest_ignores_wall_telemetry(self, platform):
        spec = ArrivalSpec(mode="poisson", n=50, rate_jobs_s=60.0, seed=9)
        report = run_replay(spec, platform)
        mutated = [r for r in report.records]
        mutated[0].solve_wall_ms = 999.0  # telemetry only
        assert table_digest(mutated, report.energy) == report.digest


class TestSloRamp:
    def test_ramp_reports_points_and_best(self, platform):
        spec = ArrivalSpec(mode="poisson", n=300, seed=6)
        best, points = find_max_sustainable_rate(
            spec,
            platform,
            rates_jobs_s=[50.0, 100.0],
            slo_p99_ms=10_000.0,  # generous: both rates must pass
            max_backlog=64,
        )
        assert [p.rate_jobs_s for p in points] == [50.0, 100.0]
        assert best == 100.0
        assert all(p.sustainable for p in points)

    def test_impossible_slo_yields_none(self, platform):
        spec = ArrivalSpec(mode="poisson", n=200, seed=6)
        best, points = find_max_sustainable_rate(
            spec,
            platform,
            rates_jobs_s=[50.0],
            slo_p99_ms=1e-9,
            max_backlog=64,
        )
        assert best is None
        assert points[0].sustainable is False

    def test_bad_slo_rejected(self, platform):
        with pytest.raises(ValueError):
            find_max_sustainable_rate(
                ArrivalSpec(n=10, seed=1),
                platform,
                rates_jobs_s=[10.0],
                slo_p99_ms=0.0,
            )

"""Seeded open-loop arrival processes for the streaming replayer.

Three modes, all emitting the same :class:`Job` shape (arrival instant,
absolute deadline, workload) in non-decreasing arrival order:

``poisson``
    Memoryless arrivals at a constant offered rate: inter-arrival times
    are exponential with mean ``1000 / rate_jobs_s`` ms.  The natural
    "sporadic jobs from many independent users" null model.

``mmpp``
    A two-state Markov-modulated Poisson process: a *base* state at the
    offered rate and a *burst* state at ``burst_factor`` times it, with
    exponentially distributed dwell times in each state.  Same long-run
    mean rate as ``poisson`` when dwell times are equal, but bursty --
    the shape that stresses admission control and tail latency.

``trace``
    Replay recorded releases: any task list (a file the CLI loaded, a
    Section 8.1.2 synthetic trace) becomes an arrival stream verbatim.

Every generated quantity flows through one explicit ``random.Random(seed)``
instance (DET002), so a (mode, rate, n, seed) tuple pins the byte-exact
job stream: the replayer's reproducibility contract starts here.

Per-job deadline spans and workloads reuse the paper's Section 8.1.2
ranges (span uniform in [10, 120] ms, workload uniform in [2000, 5000]
kilocycles) unless overridden, so streaming jobs are statistically the
same individuals as the closed-loop synthetic sweeps -- only the arrival
law changes.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.models.task import Task
from repro.units import JOBS_PER_S, MS, unit
from repro.workloads.synthetic import SPAN_RANGE_MS, WORKLOAD_RANGE_KC

__all__ = [
    "ARRIVAL_MODES",
    "ArrivalSpec",
    "Job",
    "mean_interarrival_ms",
    "mmpp_jobs",
    "offered_rate_jobs_s",
    "poisson_jobs",
    "trace_jobs",
]

#: ``repro replay --mode`` / ``ArrivalSpec.mode`` choices.
ARRIVAL_MODES = ("poisson", "mmpp", "trace")

#: Virtual time is in ms repo-wide; offered rates are quoted in jobs/s.
_MS_PER_S = 1000.0


@dataclass(frozen=True)
class Job:
    """One sporadic job: an arrival instant, a deadline and work to do."""

    name: str
    arrival_ms: float
    deadline_ms: float
    workload_kc: float

    @property
    def span_ms(self) -> float:
        """The relative deadline (feasible-region length)."""
        return self.deadline_ms - self.arrival_ms

    def task(self) -> Task:
        """The job as a :class:`~repro.models.task.Task` released on arrival."""
        return Task(self.arrival_ms, self.deadline_ms, self.workload_kc, self.name)


def _job(
    index: int,
    arrival: float,
    rng: random.Random,
    span_range: Tuple[float, float],
    workload_range: Tuple[float, float],
) -> Job:
    span = rng.uniform(*span_range)
    workload = rng.uniform(*workload_range)
    return Job(f"J{index}", arrival, arrival + span, workload)


def _check_common(n: int, rate_jobs_s: float) -> None:
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if rate_jobs_s <= 0.0:
        raise ValueError(f"rate_jobs_s must be positive, got {rate_jobs_s}")


def poisson_jobs(
    *,
    n: int,
    rate_jobs_s: float,
    seed: int,
    span_range: Tuple[float, float] = SPAN_RANGE_MS,
    workload_range: Tuple[float, float] = WORKLOAD_RANGE_KC,
) -> Iterator[Job]:
    """``n`` Poisson arrivals at ``rate_jobs_s`` (lazy, arrival-ordered)."""
    _check_common(n, rate_jobs_s)
    rng = random.Random(seed)
    mean_gap_ms = _MS_PER_S / rate_jobs_s
    t = 0.0
    for index in range(n):
        if index > 0:
            t += rng.expovariate(1.0) * mean_gap_ms
        yield _job(index, t, rng, span_range, workload_range)


def mmpp_jobs(
    *,
    n: int,
    rate_jobs_s: float,
    seed: int,
    burst_factor: float = 8.0,
    mean_dwell_ms: float = 2000.0,
    span_range: Tuple[float, float] = SPAN_RANGE_MS,
    workload_range: Tuple[float, float] = WORKLOAD_RANGE_KC,
) -> Iterator[Job]:
    """``n`` arrivals from a two-state MMPP (base rate / burst rate).

    State dwell times are exponential with mean ``mean_dwell_ms``; the
    burst state multiplies the base rate by ``burst_factor``.  The
    competing-exponentials construction is exact: when the candidate
    inter-arrival crosses the next state switch, time advances to the
    switch and the gap is redrawn from the new state's rate --
    memorylessness makes the redraw distribution-correct.
    """
    _check_common(n, rate_jobs_s)
    if burst_factor < 1.0:
        raise ValueError(f"burst_factor must be >= 1, got {burst_factor}")
    if mean_dwell_ms <= 0.0:
        raise ValueError(f"mean_dwell_ms must be positive, got {mean_dwell_ms}")
    rng = random.Random(seed)
    rates = (rate_jobs_s / _MS_PER_S, burst_factor * rate_jobs_s / _MS_PER_S)
    state = 0
    t = 0.0
    switch_at = rng.expovariate(1.0) * mean_dwell_ms
    emitted = 0
    while emitted < n:
        if emitted == 0:
            arrival = t
        else:
            while True:
                gap = rng.expovariate(rates[state])
                if t + gap <= switch_at:
                    arrival = t + gap
                    break
                t = switch_at
                state = 1 - state
                switch_at = t + rng.expovariate(1.0) * mean_dwell_ms
        t = arrival
        yield _job(emitted, arrival, rng, span_range, workload_range)
        emitted += 1


def trace_jobs(tasks: Iterable[Task]) -> Iterator[Job]:
    """Replay recorded tasks as an arrival stream (release-ordered)."""
    ordered = sorted(tasks, key=lambda t: (t.release, t.deadline, t.name))
    if not ordered:
        raise ValueError("cannot replay an empty trace")
    for index, task in enumerate(ordered):
        name = task.name or f"J{index}"
        yield Job(name, task.release, task.deadline, task.workload)


@unit(JOBS_PER_S)
def offered_rate_jobs_s(jobs: Sequence[Job]) -> float:
    """Realized offered rate of a job stream: count over arrival span."""
    if len(jobs) < 2:
        return 0.0
    span_ms = jobs[-1].arrival_ms - jobs[0].arrival_ms
    if span_ms <= 0.0:
        return math.inf
    return (len(jobs) - 1) / (span_ms / _MS_PER_S)


@unit(MS)
def mean_interarrival_ms(jobs: Sequence[Job]) -> float:
    """Mean gap between consecutive arrivals."""
    if len(jobs) < 2:
        return 0.0
    return (jobs[-1].arrival_ms - jobs[0].arrival_ms) / (len(jobs) - 1)


@dataclass(frozen=True)
class ArrivalSpec:
    """A picklable recipe for one arrival stream (CLI / bench currency).

    ``trace`` mode carries its tasks inline (``trace_tasks``); the seeded
    modes carry only parameters, so the spec -- not a materialized job
    list -- is what cache keys, bench slices and reports record.
    """

    mode: str = "poisson"
    n: int = 1000
    rate_jobs_s: float = 50.0
    seed: int = 1
    burst_factor: float = 8.0
    mean_dwell_ms: float = 2000.0
    span_range: Tuple[float, float] = SPAN_RANGE_MS
    workload_range: Tuple[float, float] = WORKLOAD_RANGE_KC
    trace_tasks: Optional[Tuple[Task, ...]] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.mode not in ARRIVAL_MODES:
            raise ValueError(
                f"unknown arrival mode {self.mode!r}; valid: {', '.join(ARRIVAL_MODES)}"
            )
        if self.mode == "trace" and self.trace_tasks is None:
            raise ValueError("trace mode needs trace_tasks")

    def jobs(self) -> List[Job]:
        """Materialize the stream (deterministic for a given spec)."""
        if self.mode == "poisson":
            return list(
                poisson_jobs(
                    n=self.n,
                    rate_jobs_s=self.rate_jobs_s,
                    seed=self.seed,
                    span_range=self.span_range,
                    workload_range=self.workload_range,
                )
            )
        if self.mode == "mmpp":
            return list(
                mmpp_jobs(
                    n=self.n,
                    rate_jobs_s=self.rate_jobs_s,
                    seed=self.seed,
                    burst_factor=self.burst_factor,
                    mean_dwell_ms=self.mean_dwell_ms,
                    span_range=self.span_range,
                    workload_range=self.workload_range,
                )
            )
        assert self.trace_tasks is not None
        return list(trace_jobs(self.trace_tasks))

    def at_rate(self, rate_jobs_s: float) -> "ArrivalSpec":
        """The same spec at a different offered rate (SLO ramp steps)."""
        if self.mode == "trace":
            raise ValueError("trace mode replays recorded arrivals; no rate knob")
        return ArrivalSpec(
            mode=self.mode,
            n=self.n,
            rate_jobs_s=rate_jobs_s,
            seed=self.seed,
            burst_factor=self.burst_factor,
            mean_dwell_ms=self.mean_dwell_ms,
            span_range=self.span_range,
            workload_range=self.workload_range,
        )

    def describe(self) -> dict:
        """JSON-ready spec summary for reports and the bench trajectory."""
        out: dict = {"mode": self.mode, "n": self.n}
        if self.mode == "trace":
            assert self.trace_tasks is not None
            out["trace_len"] = len(self.trace_tasks)
            return out
        out.update(
            {
                "rate_jobs_s": self.rate_jobs_s,
                "seed": self.seed,
                "span_range_ms": list(self.span_range),
                "workload_range_kc": list(self.workload_range),
            }
        )
        if self.mode == "mmpp":
            out["burst_factor"] = self.burst_factor
            out["mean_dwell_ms"] = self.mean_dwell_ms
        return out

"""Workload generators reproducing the paper's evaluation inputs (Sec. 8.1).

* :mod:`repro.workloads.synthetic` -- random sporadic task sets per
  Section 8.1.2 (workloads 2-5 Mcycles, feasible regions 10-120 ms,
  max inter-arrival ``x`` in 100..800 ms);
* :mod:`repro.workloads.dspstone` -- DSPstone-like FFT-1024 and
  matrix-multiply instance streams per Section 8.1.1 (cycle counts
  modelled from operation counts; see DESIGN.md substitution S2).
"""

from repro.workloads.synthetic import synthetic_tasks, utilization_of
from repro.workloads.dspstone import (
    FFT_1024_KILOCYCLES,
    REFERENCE_MHZ,
    dspstone_trace,
    fft_instance_kilocycles,
    matmul_instance_kilocycles,
)
from repro.workloads.periodic import (
    PeriodicTask,
    expand_periodic,
    hyperperiod,
    total_utilization,
)

__all__ = [
    "PeriodicTask",
    "expand_periodic",
    "hyperperiod",
    "total_utilization",
    "synthetic_tasks",
    "utilization_of",
    "FFT_1024_KILOCYCLES",
    "REFERENCE_MHZ",
    "dspstone_trace",
    "fft_instance_kilocycles",
    "matmul_instance_kilocycles",
]

"""Discrete speed levels: two-level emulation of continuous schedules.

The paper assumes continuous speeds and cites Ishihara & Yasuura (1998)
for the bridge to real hardware: any continuous speed ``s`` between two
adjacent available levels ``s_lo < s < s_hi`` is optimally emulated by
splitting the execution between exactly those two levels, finishing the
same workload in the same window.  Because the power function is convex,
the emulation energy is the chord of ``P`` between the two levels -- the
cheapest of all level mixtures -- and the overhead vanishes as the level
grid refines.

This module quantizes any :class:`~repro.schedule.timeline.Schedule`
produced by the continuous schemes onto a level grid and reports the
overhead, letting users reproduce the paper's claim that "there will be
no big gap between the continuous voltage and discrete voltage".
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.models.power import CorePowerModel
from repro.schedule.timeline import CoreTimeline, ExecutionInterval, Schedule

__all__ = [
    "split_interval",
    "quantize_schedule",
    "quantization_overhead",
    "a57_levels",
]


def a57_levels(count: int = 13) -> List[float]:
    """An evenly spaced 700..1900 MHz level grid (A57-style DVFS table)."""
    if count < 2:
        raise ValueError("need at least two levels")
    step = (1900.0 - 700.0) / (count - 1)
    return [700.0 + step * k for k in range(count)]


def _bracket(levels: Sequence[float], speed: float) -> Tuple[float, float]:
    """Adjacent levels around ``speed`` (clamped to the grid's range)."""
    if speed <= levels[0]:
        return levels[0], levels[0]
    if speed >= levels[-1]:
        return levels[-1], levels[-1]
    hi_index = bisect.bisect_left(levels, speed)
    lo = levels[hi_index - 1]
    hi = levels[hi_index]
    if math.isclose(speed, hi, rel_tol=1e-12):
        return hi, hi
    return lo, hi


def split_interval(
    interval: ExecutionInterval, levels: Sequence[float]
) -> List[ExecutionInterval]:
    """Emulate one constant-speed interval on a discrete level grid.

    Runs at the higher level first, then the lower, so the workload and
    the ``[start, end)`` window are preserved exactly:

        t_hi * s_hi + (T - t_hi) * s_lo = T * s
        =>  t_hi = T * (s - s_lo) / (s_hi - s_lo).

    Speeds below the lowest level are *rounded up* to it (finishing early
    is always deadline-safe; idling after is the platform's business);
    speeds above the highest level are rejected -- the continuous schedule
    was infeasible for this grid.
    """
    ordered = sorted(levels)
    if not ordered:
        raise ValueError("empty level grid")
    speed = interval.speed
    if speed > ordered[-1] * (1.0 + 1e-9):
        raise ValueError(
            f"{interval.task}: speed {speed:.1f} exceeds the top level "
            f"{ordered[-1]:.1f}"
        )
    lo, hi = _bracket(ordered, speed)
    duration = interval.duration
    if lo == hi:
        # Exactly on a level, or below the grid: run at the level, shorter.
        new_duration = interval.workload / lo
        return [
            ExecutionInterval(
                interval.task, interval.start, interval.start + new_duration, lo
            )
        ]
    t_hi = duration * (speed - lo) / (hi - lo)
    pieces: List[ExecutionInterval] = []
    if t_hi > 1e-12:
        pieces.append(
            ExecutionInterval(
                interval.task, interval.start, interval.start + t_hi, hi
            )
        )
    if duration - t_hi > 1e-12:
        pieces.append(
            ExecutionInterval(
                interval.task, interval.start + t_hi, interval.end, lo
            )
        )
    return pieces


def quantize_schedule(
    schedule: Schedule, levels: Sequence[float]
) -> Schedule:
    """Quantize every interval of a schedule onto the level grid."""
    cores = []
    for core in schedule.cores:
        pieces: List[ExecutionInterval] = []
        for interval in core:
            pieces.extend(split_interval(interval, levels))
        cores.append(CoreTimeline(pieces))
    return Schedule(cores)


@dataclass(frozen=True)
class QuantizationReport:
    """Energy effect of discretizing a continuous schedule."""

    continuous_dynamic: float
    discrete_dynamic: float

    @property
    def overhead_ratio(self) -> float:
        """Relative dynamic-energy overhead, ``discrete/continuous - 1``."""
        if self.continuous_dynamic == 0.0:
            return 0.0
        return self.discrete_dynamic / self.continuous_dynamic - 1.0


def quantization_overhead(
    schedule: Schedule, levels: Sequence[float], core: CorePowerModel
) -> QuantizationReport:
    """Dynamic-energy overhead of two-level emulation on ``levels``.

    (Static energy depends on idle policy and horizon, which quantization
    does not change: windows are preserved or shortened.)
    """
    continuous = sum(
        core.dynamic_power(iv.speed) * iv.duration
        for iv in schedule.all_intervals()
    )
    quantized = quantize_schedule(schedule, levels)
    discrete = sum(
        core.dynamic_power(iv.speed) * iv.duration
        for iv in quantized.all_intervals()
    )
    return QuantizationReport(continuous, discrete)

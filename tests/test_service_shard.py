"""Shard tier tests (PR 10): routing, byte-identity, drain, backpressure.

The acceptance contract: a sharded service is an *invisible* scaling
knob.  Canonical result bytes must match the inline batcher tier and the
direct solver byte for byte -- for 1 shard and N shards, cold cache and
warm -- and drain must hand back exactly one response per admitted
request, flushing the workers' memo statistics into the parent metrics
on the way out.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.experiments.cache import ResultCache
from repro.models import Task, TaskSet
from repro.service import protocol
from repro.service.client import (
    ServiceClient,
    demo_wire_requests,
    expected_result,
)
from repro.service.queue import ShardedAdmissionQueue, split_capacity
from repro.service.ring import HashRing
from repro.service.server import SolveService
from repro.service.shard import ShardPool, shard_route_key


def run(coro):
    return asyncio.run(coro)


def solve_wire(request_id, **overrides):
    wire = {
        "kind": "solve",
        "id": str(request_id),
        "tasks": [
            {"name": "a", "release": 0.0, "deadline": 40.0, "workload": 8000.0},
            {"name": "b", "release": 0.0, "deadline": 70.0, "workload": 15000.0},
        ],
    }
    wire.update(overrides)
    return wire


def make_request(request_id, platform=None):
    return protocol.request_from_wire(
        solve_wire(request_id, **({"platform": platform} if platform else {}))
    )


async def with_service(body, **kwargs):
    service = SolveService(**kwargs)
    await service.start()
    try:
        return await body(service)
    finally:
        await service.drain()


class TestCapacitySplit:
    def test_split_sums_to_total(self):
        for capacity, shards in [(256, 4), (10, 3), (7, 7), (5, 2)]:
            parts = split_capacity(capacity, shards)
            assert len(parts) == shards
            assert sum(parts) == capacity

    def test_remainder_goes_to_first_shards(self):
        assert split_capacity(10, 3) == [4, 3, 3]

    def test_capacity_below_shards_rejected(self):
        with pytest.raises(ValueError):
            split_capacity(2, 3)


class TestShardedQueue:
    def _queue(self, shards=2, capacity=8, **kwargs):
        ring = HashRing(shards)
        return ShardedAdmissionQueue(
            shards,
            lambda request: ring.shard_for(shard_route_key(request)),
            capacity,
            **kwargs,
        )

    def test_offer_stamps_shard_and_routes_consistently(self):
        queue = self._queue()
        results = [queue.offer(make_request(i)) for i in range(4)]
        assert all(r.admitted for r in results)
        shards = {r.shard for r in results}
        # Identical platforms share one shard: that is the affinity
        # contract keeping worker memos warm.
        assert len(shards) == 1
        assert queue.shard_depth(results[0].shard) == 4
        assert queue.depth == 4

    def test_per_shard_queue_full_reports_shard(self):
        queue = self._queue(shards=2, capacity=2, shed_threshold=1.0)
        first = queue.offer(make_request("a"))
        assert first.admitted
        overflow = queue.offer(make_request("b"))  # same platform, same shard
        assert not overflow.admitted
        assert overflow.code == protocol.E_QUEUE_FULL
        assert overflow.shard == first.shard

    def test_pop_shard_batch_only_drains_that_shard(self):
        queue = self._queue()
        admitted = queue.offer(make_request("x"))
        other = 1 - admitted.shard
        assert queue.pop_shard_batch(other, 8) == ([], [], [])
        ready, expired, cancelled = queue.pop_shard_batch(admitted.shard, 8)
        assert [e.request.id for e in ready] == ["x"]
        assert expired == [] and cancelled == []

    def test_depth_peak_tracks_aggregate(self):
        queue = self._queue(capacity=16)
        for i in range(5):
            queue.offer(make_request(i))
        assert queue.depth_peak == 5


class TestByteIdentity:
    def _expected(self, wires):
        # expected_result pins each wire's numeric backend around the
        # direct call, exactly like the service's per-batch resolution.
        return [
            protocol.canonical_result_bytes(expected_result(dict(w)))
            for w in wires
        ]

    def _serve_all(self, wires, tmp_path, shards, tag):
        cache = ResultCache(str(tmp_path / f"cache-{tag}"))

        async def body(service):
            passes = []
            for _ in range(2):  # cold, then warm
                responses = await asyncio.gather(
                    *[service.handle_message(dict(w)) for w in wires]
                )
                passes.append(responses)
            return passes

        return run(
            with_service(
                body,
                shards=shards,
                cache=cache,
                capacity=256,
                batch_window_ms=0.0,
            )
        )

    def test_sharded_results_match_inline_and_direct(self, tmp_path):
        wires = [
            w
            for w in demo_wire_requests(12, unique=4, seed=3)
            if w.get("kind") == "solve"
        ]
        expected = self._expected(wires)
        for shards in (0, 1, 4):  # 0 = inline batcher tier
            passes = self._serve_all(wires, tmp_path, shards, f"s{shards}")
            for label, responses in zip(("cold", "warm"), passes):
                assert all(r["ok"] for r in responses), (shards, label)
                got = [
                    protocol.canonical_result_bytes(r["result"])
                    for r in responses
                ]
                assert got == expected, (shards, label)

    def test_shard_provenance_stamped(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache-prov"))

        async def body(service):
            return await service.handle_message(solve_wire("p1"))

        response = run(
            with_service(body, shards=2, cache=cache, batch_window_ms=0.0)
        )
        assert response["ok"] is True
        assert response["provenance"]["shard"] in (0, 1)


class TestDrain:
    def test_no_lost_or_duplicated_responses_across_drain(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache-drain"))
        wires = [solve_wire(f"d{i}") for i in range(24)]

        async def body():
            service = SolveService(
                shards=2, cache=cache, capacity=64, batch_window_ms=5.0
            )
            await service.start()
            tasks = [
                asyncio.create_task(service.handle_message(dict(w)))
                for w in wires
            ]
            await asyncio.sleep(0)  # let every request enqueue
            await service.drain()
            responses = await asyncio.gather(*tasks)
            return service, responses

        service, responses = run(body())
        assert len(responses) == len(wires)
        ids = [r["id"] for r in responses]
        assert sorted(ids) == sorted(w["id"] for w in wires)
        assert len(set(ids)) == len(wires)
        assert all(r["ok"] for r in responses)

    def test_drain_flushes_worker_memo_stats_into_metrics(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache-stats"))

        async def body():
            service = SolveService(
                shards=2, cache=cache, capacity=64, batch_window_ms=0.0
            )
            await service.start()
            await service.handle_message(solve_wire("m1"))
            await service.drain()
            return service.metrics.render_text()

        text = run(body())
        assert 'repro_shard_block_arrays_cached{shard="0"}' in text
        assert 'repro_shard_block_arrays_cached{shard="1"}' in text
        assert 'repro_shard_worker_pid{shard=' in text


class TestBackpressureEnvelope:
    def test_queue_full_envelope_carries_shard(self):
        async def body():
            # Never started: offers accumulate, so the per-shard bound
            # (capacity 2 over 2 shards = 1 slot each) trips immediately.
            service = SolveService(shards=2, capacity=2, shed_threshold=1.0)
            filler = make_request("filler")
            shard = service.shard_pool.route(filler)
            assert service.queue.offer(filler).admitted
            response = await service.handle_message(solve_wire("overflow"))
            await service.drain()
            return shard, response

        shard, response = run(body())
        assert response["ok"] is False
        assert response["error"]["code"] == protocol.E_QUEUE_FULL
        assert response["error"]["shard"] == shard

    def test_inline_tier_envelope_has_no_shard_key(self):
        async def body():
            service = SolveService(capacity=4, shed_threshold=1.0)
            for i in range(4):
                assert service.queue.offer(make_request(i)).admitted
            response = await service.handle_message(solve_wire("overflow"))
            await service.drain()
            return response

        response = run(body())
        assert response["ok"] is False
        # Single-shard/inline envelopes stay byte-stable: no shard key.
        assert "shard" not in response["error"]


class TestClientJitter:
    def test_seeded_clients_draw_identical_jitter(self):
        a = ServiceClient("127.0.0.1", 1, retry_seed=42)
        b = ServiceClient("127.0.0.1", 1, retry_seed=42)
        assert [a._retry_rng.random() for _ in range(8)] == [
            b._retry_rng.random() for _ in range(8)
        ]

    def test_unseeded_clients_desynchronize(self):
        a = ServiceClient("127.0.0.1", 1)
        b = ServiceClient("127.0.0.1", 1)
        draws_a = [a._retry_rng.random() for _ in range(8)]
        draws_b = [b._retry_rng.random() for _ in range(8)]
        assert draws_a != draws_b

    def test_jitter_out_of_range_rejected(self):
        client = ServiceClient("127.0.0.1", 1)
        with pytest.raises(ValueError, match="jitter"):
            run(client.request_with_retry(solve_wire("j"), jitter=1.5))


class TestShardPoolRouting:
    def test_route_matches_ring_on_fingerprint(self):
        pool = ShardPool(3)
        try:
            request = make_request("r1", platform={"alpha_m": 2000.0})
            expected = pool.ring.shard_for(shard_route_key(request))
            assert pool.route(request) == expected
        finally:
            pool.shutdown()

    def test_distinct_platforms_spread_over_shards(self):
        pool = ShardPool(4)
        try:
            shards = {
                pool.route(make_request(i, platform={"alpha_m": 1000.0 + i}))
                for i in range(40)
            }
            assert len(shards) > 1
        finally:
            pool.shutdown()

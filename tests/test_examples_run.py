"""Keep every example runnable: execute each script as a subprocess.

Examples are user-facing documentation; a broken example is a broken
README.  Each must exit 0 and print something sensible.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

EXPECTED_MARKERS = {
    "quickstart.py": "SDEM optimal",
    "race_or_stretch.py": "race to idle",
    "dsp_pipeline.py": "saving vs MBKP",
    "agreeable_frames.py": "block",
    "transition_overhead_study.py": "sweep xi_m",
    "server_burst_scheduling.py": "SDEM-ON",
    "big_little_cluster.py": "A57",
    "voltage_islands.py": "island",
}


def example_scripts():
    return sorted(
        name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
    )


def test_every_example_has_a_marker():
    assert set(example_scripts()) == set(EXPECTED_MARKERS)


@pytest.mark.parametrize("script", sorted(EXPECTED_MARKERS))
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert EXPECTED_MARKERS[script] in result.stdout
    assert not result.stderr.strip()

"""Bounded-core SDEM (paper Section 3, Theorem 1).

With fewer cores than tasks, SDEM is NP-hard even for common release time
and common deadline, ``alpha = 0`` and free transitions: the reduction is
from PARTITION, because for a fixed assignment the optimal busy interval and
energy have the closed forms

    |I_b|   = ((lam - 1) * beta * sum_c W_c**lam / alpha_m) ** (1/lam)   (Eq. 2)
    E_min   = alpha_m**((lam-1)/lam) * beta**(1/lam) * lam
              * (lam - 1)**((1-lam)/lam) * (sum_c W_c**lam) ** (1/lam)   (Eq. 3)

which are minimized by balancing the per-core load sums ``W_c``.  This
module provides those closed forms, exact and heuristic partitioners, and a
complete solver for the common-release/common-deadline bounded instance --
the substrate for the Theorem 1 benchmark and tests.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import List, Literal, Sequence, Tuple

from repro.models.platform import Platform
from repro.models.task import TaskSet
from repro.schedule.timeline import CoreTimeline, ExecutionInterval, Schedule

__all__ = [
    "optimal_busy_interval_two_cores",
    "balanced_partition_energy",
    "partition_tasks",
    "BoundedSolution",
    "solve_bounded_common_deadline",
]


def optimal_busy_interval_two_cores(
    loads: Sequence[float], platform: Platform
) -> float:
    """Eq. (2): the unconstrained optimal shared busy-interval length.

    ``loads`` are the per-core workload sums ``W_c`` (any core count; the
    paper states the two-core case).  All cores share the busy interval
    ``[0, |I_b|]``, each running at ``W_c / |I_b|``.
    """
    core = platform.core
    alpha_m = platform.memory.alpha_m
    if alpha_m <= 0.0:
        raise ValueError("Eq. (2) requires alpha_m > 0")
    power_sum = sum(load ** core.lam for load in loads)
    return (
        (core.lam - 1.0) * core.beta * power_sum / alpha_m
    ) ** (1.0 / core.lam)


def balanced_partition_energy(
    loads: Sequence[float], platform: Platform
) -> float:
    """Eq. (3): minimum system energy for a fixed assignment.

    Equal to evaluating the energy at the Eq. (2) interval; exposed in
    closed form so tests can verify the paper's algebra.
    """
    core = platform.core
    alpha_m = platform.memory.alpha_m
    lam, beta = core.lam, core.beta
    power_sum = sum(load ** lam for load in loads)
    return (
        alpha_m ** ((lam - 1.0) / lam)
        * beta ** (1.0 / lam)
        * lam
        * (lam - 1.0) ** ((1.0 - lam) / lam)
        * power_sum ** (1.0 / lam)
    )


def partition_tasks(
    workloads: Sequence[float],
    num_cores: int,
    *,
    lam: float = 3.0,
    method: Literal["exact", "lpt"] = "exact",
) -> List[List[int]]:
    """Partition task indices across cores minimizing ``sum_c W_c**lam``.

    ``exact`` branch-and-bounds over assignments (exponential -- meant for
    the small instances of the Theorem 1 experiments); ``lpt`` is the
    longest-processing-time greedy heuristic.  Returns one index list per
    core.
    """
    n = len(workloads)
    if num_cores < 1:
        raise ValueError("num_cores must be >= 1")
    if n == 0:
        return [[] for _ in range(num_cores)]
    order = sorted(range(n), key=lambda i: -workloads[i])

    if method == "lpt":
        groups: List[List[int]] = [[] for _ in range(num_cores)]
        loads = [0.0] * num_cores
        for index in order:
            target = min(range(num_cores), key=loads.__getitem__)
            groups[target].append(index)
            loads[target] += workloads[index]
        return groups

    if method != "exact":
        raise ValueError(f"unknown method {method!r}")
    if n > 24:
        raise ValueError("exact partitioning is exponential; use method='lpt'")

    best_cost = math.inf
    best_groups: List[List[int]] | None = None
    groups = [[] for _ in range(num_cores)]
    loads = [0.0] * num_cores

    # Seed the bound with LPT so pruning bites immediately.
    lpt_groups = partition_tasks(workloads, num_cores, lam=lam, method="lpt")
    best_cost = sum(
        sum(workloads[i] for i in group) ** lam for group in lpt_groups
    )
    best_groups = [list(group) for group in lpt_groups]

    def recurse(position: int) -> None:
        nonlocal best_cost, best_groups
        if position == n:
            cost = sum(load ** lam for load in loads)
            if cost < best_cost - 1e-12:
                best_cost = cost
                best_groups = [list(group) for group in groups]
            return
        # Lower bound: committed loads finalized, remainder spread ideally.
        committed = sum(load ** lam for load in loads)
        if committed >= best_cost:
            return
        index = order[position]
        seen_loads = set()
        for c in range(num_cores):
            # Symmetry pruning: identical current loads are interchangeable.
            if loads[c] in seen_loads:
                continue
            seen_loads.add(loads[c])
            groups[c].append(index)
            loads[c] += workloads[index]
            recurse(position + 1)
            loads[c] -= workloads[index]
            groups[c].pop()

    recurse(0)
    assert best_groups is not None
    return best_groups


@dataclass(frozen=True)
class BoundedSolution:
    """Solution of a bounded-core common-release/common-deadline instance."""

    tasks: TaskSet
    groups: Tuple[Tuple[int, ...], ...]
    busy_length: float
    predicted_energy: float

    def schedule(self) -> Schedule:
        """Back-to-back executions per core inside ``[r, r + busy_length]``."""
        release = self.tasks[0].release
        cores: List[CoreTimeline] = []
        for group in self.groups:
            intervals: List[ExecutionInterval] = []
            cursor = release
            load = sum(self.tasks[i].workload for i in group)
            if load <= 0.0:
                cores.append(CoreTimeline())
                continue
            speed = load / self.busy_length
            for i in group:
                duration = self.tasks[i].workload / speed
                intervals.append(
                    ExecutionInterval(
                        self.tasks[i].name, cursor, cursor + duration, speed
                    )
                )
                cursor += duration
            cores.append(CoreTimeline(intervals))
        return Schedule(cores)


def solve_bounded_common_deadline(
    tasks: TaskSet,
    platform: Platform,
    *,
    method: Literal["exact", "lpt"] = "exact",
) -> BoundedSolution:
    """Solve the Theorem 1 instance on ``platform.num_cores`` cores.

    Requires common release and common deadline and ``alpha = 0`` (the
    hardness setting).  The assignment is found by ``method``; the busy
    interval is Eq. (2) clamped into ``[max_c W_c / s_up, D]``.
    """
    if platform.num_cores is None:
        raise ValueError("bounded solver needs a finite num_cores")
    if not tasks.has_common_release() or not tasks.has_common_deadline():
        raise ValueError("Theorem 1 model: common release and deadline required")
    if platform.core.alpha != 0.0:
        raise ValueError("Theorem 1 model assumes alpha = 0")

    core = platform.core
    deadline_span = tasks.latest_deadline - tasks[0].release
    workloads = tasks.workloads()
    groups = partition_tasks(
        workloads, platform.num_cores, lam=core.lam, method=method
    )
    loads = [sum(workloads[i] for i in group) for group in groups]
    busy = optimal_busy_interval_two_cores(
        [load for load in loads if load > 0.0], platform
    )
    lo = max((load for load in loads), default=0.0) / core.s_up
    busy = min(max(busy, lo), deadline_span)
    energy = platform.memory.alpha_m * busy + sum(
        core.beta * (load / busy) ** core.lam * busy for load in loads if load > 0.0
    )
    return BoundedSolution(
        tasks=tasks,
        groups=tuple(tuple(g) for g in groups),
        busy_length=busy,
        predicted_energy=energy,
    )

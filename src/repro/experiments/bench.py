"""``repro bench``: measure the experiment engine on a Fig. 6 slice.

Three timed runs of the same Fig. 6 FFT slice, in a fixed order:

1. **serial cold** -- ``max_workers=1``, no result cache, in-process
   memoization cleared: the pre-engine baseline;
2. **parallel cold** -- ``max_workers=N`` through the process pool,
   populating a fresh on-disk result cache as it goes;
3. **warm cache** -- ``max_workers=1`` again, every unit served from the
   cache populated by run 2.

When both numeric backends are importable, a fourth phase re-runs the
serial cold slice under ``scalar`` and ``numpy``
(:mod:`repro.core.vectorized`) and reports two speedups: **wall** (whole
slice, Amdahl-bounded by the non-solver engine share) and **numeric
core** (time inside the Section 4-7 solver entry points only, measured by
wrapping them for the duration of the run).  The backends' output rows
must match exactly -- the comparison carries its own ``rows_identical``.

The three engine runs must produce identical ``SeriesResult.rows()``
output -- :func:`run_bench` asserts it -- so the speedup table never
advertises a fast-but-different engine.  Results are printed as a table
and *appended* to the trajectory list in ``BENCH_experiments.json`` (CI
uploads it as an artifact), so successive runs accumulate a performance
history instead of overwriting it.  Interpretation notes live in
docs/PERFORMANCE.md; in particular the parallel speedup is bounded by the
machine's core count, so on a single-core container run 2 shows only pool
overhead.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from datetime import datetime, timezone
from typing import Dict, List, Optional

from repro.core import vectorized
from repro.core.blocks import block_energy_cache_clear
from repro.experiments.cache import ResultCache
from repro.experiments.fig6 import fig6_specs
from repro.experiments.parallel import resolve_workers, run_series
from repro.experiments.runner import SeriesResult
from repro.utils.solvers import reset_solver_counts, solver_call_total

__all__ = [
    "BENCH_SLICES",
    "check_serial_regression",
    "load_trajectory",
    "run_bench",
    "run_bench_huge_n",
    "run_bench_service",
    "run_bench_streaming",
    "render_bench_table",
    "render_bench_huge_n_table",
    "render_bench_service_table",
    "render_bench_streaming_table",
    "write_bench_json",
]

#: ``repro bench --slice`` choices; huge-n, streaming and service have
#: their own runners.
BENCH_SLICES = ("fft", "synthetic", "huge-n", "streaming", "service")

#: Default Fig. 6 slice: the full U sweep at a moderate seed count.
BENCH_U_VALUES: List[int] = [2, 3, 4, 5, 6, 7, 8, 9]
BENCH_SEEDS = 5
BENCH_INSTANCES = 48

#: ``--quick`` slice for CI smoke: a few seconds end to end.
QUICK_U_VALUES: List[int] = [2, 3]
QUICK_SEEDS = 2
QUICK_INSTANCES = 24

#: Synthetic slice: one Table 4 star memory point over the ``x`` sweep.
BENCH_X_VALUES: List[float] = [100.0, 200.0, 400.0, 800.0]
BENCH_TRACE_LENGTH = 50
QUICK_X_VALUES: List[float] = [200.0, 400.0]
QUICK_TRACE_LENGTH = 30

#: Huge-n slice: agreeable traces far beyond the exact tier's reach.
HUGE_N_VALUES: List[int] = [100, 1000, 10000, 100000]
HUGE_N_EPSILONS: List[float] = [0.1, 0.01]
QUICK_HUGE_N_VALUES: List[int] = [100, 1000]
QUICK_HUGE_N_EPSILONS: List[float] = [0.1]
#: Largest n the exact Section 5 DP is asked to solve in the sweep.
HUGE_N_EXACT_CAP = 1000
#: Quick-mode exact cap: the exact DP needs ~2min at n=1000 on the
#: running-max traces, which is full-bench territory, not CI smoke.
QUICK_HUGE_N_EXACT_CAP = 100
#: Largest n the object-path fptas cross-check (rows_identical) runs at.
HUGE_N_OBJECT_CAP = 2000
#: Max inter-arrival of the huge-n trace (ms): sporadic enough that
#: feasibility gaps keep clusters small, so both tiers stay near-linear.
HUGE_N_X_MS = 120.0

#: Streaming slice: (offered rate jobs/s, job count) points.  The first
#: point is the ISSUE's 10^5-job acceptance run at a comfortably
#: sustainable rate; the second stresses admission (shedding engages).
STREAMING_POINTS: List[List[float]] = [[80.0, 100_000], [320.0, 20_000]]
QUICK_STREAMING_POINTS: List[List[float]] = [[80.0, 2_000], [400.0, 2_000]]
STREAMING_SEED = 1
STREAMING_MAX_BACKLOG = 64
#: Offered-load ramp for the max-sustainable-rate search (full mode).
STREAMING_RAMP_RATES: List[float] = [100.0, 200.0, 400.0, 800.0, 1600.0]
STREAMING_RAMP_N = 4000
STREAMING_SLO_P99_MS = 50.0

#: Service slice: worker (shard) counts the scaling table compares.
SERVICE_WORKER_COUNTS: List[int] = [1, 2, 4]
QUICK_SERVICE_WORKER_COUNTS: List[int] = [1, 2]
SERVICE_N_JOBS = 240
QUICK_SERVICE_N_JOBS = 60
#: Offered rate: high enough that the server, not the arrival spacing,
#: is the bottleneck on the cold pass (n jobs span ~n/rate seconds).
SERVICE_RATE_JOBS_S = 2000.0
SERVICE_SEED = 7
#: Platform-parameter rotation: the shard tier routes by platform
#: fingerprint, so a single-platform stream would exercise exactly one
#: shard.  Eight distinct memory-power points spread the ring.
SERVICE_PLATFORM_CYCLE: List[Dict[str, float]] = [
    {"alpha_m": 1200.0 + 200.0 * index} for index in range(8)
]


def _timed_run(
    name: str,
    specs,
    *,
    seeds: int,
    max_workers: Optional[int],
    cache: Optional[ResultCache],
) -> Dict[str, object]:
    """One bench mode: cold in-process state, wall-clock + counters."""
    block_energy_cache_clear()
    reset_solver_counts()
    start = time.perf_counter()
    series = run_series(
        name, specs, seeds=seeds, max_workers=max_workers, cache=cache
    )
    seconds = time.perf_counter() - start
    return {
        "series": series,
        "seconds": seconds,
        # Pool workers count in their own processes; use the per-unit
        # counters shipped back in the results, not this process's tally.
        "solver_calls": sum(p.solver_calls for p in series.points),
        "cached_units": sum(p.cached_units for p in series.points),
        "local_solver_calls": solver_call_total(),
    }


@contextmanager
def _solver_timer():
    """Accumulate wall time spent inside the online policy's solver calls.

    The Fig. 6 pipeline reaches the numeric core exclusively through the
    two entry points :mod:`repro.core.online` binds at import time, so
    wrapping those module attributes for the duration of a (serial) run
    measures exactly the share the numpy backend can accelerate --
    without leaving any timing overhead in the production hot path.
    """
    import repro.core.online as online

    elapsed = [0.0]
    names = ("solve_common_release", "solve_common_release_with_overhead")

    def timed(fn):
        def wrapper(*args, **kwargs):
            start = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                elapsed[0] += time.perf_counter() - start

        return wrapper

    originals = {name: getattr(online, name) for name in names}
    for name, fn in originals.items():
        setattr(online, name, timed(fn))
    try:
        yield elapsed
    finally:
        for name, fn in originals.items():
            setattr(online, name, fn)


def _compare_backends(
    specs, *, seeds: int, repeats: int = 3
) -> Optional[Dict[str, object]]:
    """Serial cold cross-backend comparison on the same slice.

    Runs every backend usable in this process (scalar, numpy, jit).  Each
    backend runs the slice ``repeats`` times and reports the fastest pass
    (least-interference estimate -- the box's other load only ever adds
    time).  Returns ``None`` when only the scalar backend is importable.
    Restores the caller's backend override on exit.  When the jit backend
    participates, its kernels are compiled/warmed *before* timing so
    first-call JIT cost never pollutes the numbers.
    """
    backends = vectorized.available_backends()
    if len(backends) < 2:
        return None
    if "jit" in backends:
        from repro.core import kernels

        kernels.warm_up()
    previous = vectorized.get_backend_override()
    measured: Dict[str, Dict[str, object]] = {}
    rows: Dict[str, List] = {}
    try:
        for backend in backends:
            best_wall = best_solver = float("inf")
            for _ in range(max(1, repeats)):
                vectorized.set_backend(backend)  # also clears memo caches
                vectorized.block_arrays_cache_clear()  # honest cold run
                reset_solver_counts()
                with _solver_timer() as solver_elapsed:
                    start = time.perf_counter()
                    series = run_series(
                        f"bench-{backend}", specs, seeds=seeds, max_workers=1
                    )
                    seconds = time.perf_counter() - start
                best_wall = min(best_wall, seconds)
                best_solver = min(best_solver, solver_elapsed[0])
            rows[backend] = series.rows()
            measured[backend] = {
                "seconds": round(best_wall, 4),
                "solver_seconds": round(best_solver, 4),
                "solver_calls": solver_call_total(),
            }
    finally:
        vectorized.set_backend(previous)
    scalar = measured["scalar"]
    identical = all(rows[b] == rows["scalar"] for b in backends)
    assert identical, "numeric backends disagree at the output-row level"

    def ratio(num: float, den: float) -> Optional[float]:
        return round(num / den, 3) if den > 0 else None

    speedup: Dict[str, object] = {}
    if "numpy" in measured:
        numpy = measured["numpy"]
        # Whole-slice ratio: Amdahl-bounded by the engine share the
        # backends have in common (trace generation, simulation,
        # accounting) -- see docs/PERFORMANCE.md.
        speedup["wall"] = ratio(scalar["seconds"], numpy["seconds"])
        # Solver-only ratio: the numeric core the backends swap out.
        speedup["numeric_core"] = ratio(
            scalar["solver_seconds"], numpy["solver_seconds"]
        )
    if "jit" in measured:
        jit = measured["jit"]
        # The jit tier rides the numpy engine, so numpy is its natural
        # baseline; on a numpy-less host the scalar tier stands in.
        base_name = "numpy" if "numpy" in measured else "scalar"
        base = measured[base_name]
        speedup["jit_baseline"] = base_name
        speedup["jit_wall"] = ratio(base["seconds"], jit["seconds"])
        speedup["jit_numeric_core"] = ratio(
            base["solver_seconds"], jit["solver_seconds"]
        )
    return {
        "backends": measured,
        "speedup": speedup,
        "rows_identical": identical,
    }


def run_bench(
    *,
    benchmark: str = "fft",
    bench_slice: str = "fft",
    u_values: Optional[List[int]] = None,
    seeds: Optional[int] = None,
    instances: Optional[int] = None,
    workers: Optional[int] = None,
    cache_root: str,
    quick: bool = False,
) -> Dict[str, object]:
    """Run the three-mode benchmark and return the report dict.

    ``bench_slice`` selects the workload family: ``"fft"`` is the Fig. 6
    DSPstone slice (``benchmark`` picks fft or matmul), ``"synthetic"`` the
    Fig. 7 sporadic slice at the Table 4 star memory point.  The huge-n
    slice has its own runner (:func:`run_bench_huge_n`) because it times
    single solves, not the three engine modes.  ``workers=None`` uses every
    core for the parallel mode.  ``cache_root`` hosts the run's result
    cache; it is cleared first so the "cold" modes are honestly cold.
    """
    seeds = seeds if seeds is not None else (QUICK_SEEDS if quick else BENCH_SEEDS)
    if bench_slice == "synthetic":
        from repro.experiments.config import (
            DEFAULT_ALPHA_M_MW,
            DEFAULT_XI_M_MS,
        )
        from repro.experiments.fig7 import fig7_grid_specs

        x_values = QUICK_X_VALUES if quick else BENCH_X_VALUES
        trace_length = QUICK_TRACE_LENGTH if quick else BENCH_TRACE_LENGTH
        specs = fig7_grid_specs(
            [(DEFAULT_ALPHA_M_MW, DEFAULT_XI_M_MS)],
            x_values,
            trace_length=trace_length,
        )
        slice_info: Dict[str, object] = {
            "name": "synthetic",
            "x_values": x_values,
            "seeds": seeds,
            "trace_length": trace_length,
            "units": len(x_values) * seeds,
        }
    elif bench_slice == "fft":
        if quick:
            u_values = u_values if u_values is not None else QUICK_U_VALUES
            instances = instances if instances is not None else QUICK_INSTANCES
        else:
            u_values = u_values if u_values is not None else BENCH_U_VALUES
            instances = instances if instances is not None else BENCH_INSTANCES
        specs = fig6_specs(benchmark, u_values=u_values, instances=instances)
        slice_info = {
            "name": benchmark,
            "benchmark": benchmark,
            "u_values": u_values,
            "seeds": seeds,
            "instances": instances,
            "units": len(u_values) * seeds,
        }
    else:
        raise ValueError(
            f"run_bench slices are 'fft' and 'synthetic' (got {bench_slice!r}); "
            "use run_bench_huge_n for the huge-n slice"
        )
    pool_workers = resolve_workers(workers)
    cache = ResultCache(cache_root)
    cache.clear()

    if vectorized.get_backend() == "jit":
        # Compile/warm the kernels before any timed region: first-call
        # JIT cost belongs to setup, not to the recorded trajectory.
        from repro.core import kernels

        kernels.warm_up()

    serial = _timed_run(
        "bench-serial", specs, seeds=seeds, max_workers=1, cache=None
    )
    parallel = _timed_run(
        "bench-parallel", specs, seeds=seeds, max_workers=pool_workers, cache=cache
    )
    warm = _timed_run(
        "bench-warm", specs, seeds=seeds, max_workers=1, cache=cache
    )

    rows = [mode["series"].rows() for mode in (serial, parallel, warm)]
    identical = rows[0] == rows[1] == rows[2]
    assert identical, "bench modes disagree -- engine determinism is broken"

    def mode_report(mode: Dict[str, object]) -> Dict[str, object]:
        # Wall-time split (additive, in seconds): time inside the solver
        # entry points, the rest of each work unit (trace generation,
        # simulation, validation, accounting), and everything outside the
        # units (scheduling, pool transport, cache lookups, reduction).
        # Solver seconds are accumulated in-process by the online replan
        # loop and shipped back per unit, so the split survives pool runs.
        series: SeriesResult = mode["series"]
        wall_s = mode["seconds"]
        unit_s = sum(p.wall_ms for p in series.points) / 1000.0
        solver_s = series.total_solver_ms() / 1000.0
        return {
            "seconds": round(wall_s, 4),
            "solver_calls": mode["solver_calls"],
            "cached_units": mode["cached_units"],
            "split": {
                "solver_s": round(solver_s, 4),
                "engine_s": round(max(0.0, unit_s - solver_s), 4),
                "other_s": round(max(0.0, wall_s - unit_s), 4),
            },
        }

    serial_s = serial["seconds"]
    cpu_count = os.cpu_count()
    # A single worker (or a single-core container) cannot show parallel
    # speedup; run 2 still happens (it populates the cache for run 3) but
    # its row measures pool overhead, not parallelism.
    pool_meaningless = pool_workers <= 1 or (cpu_count or 1) <= 1
    parallel_report = mode_report(parallel)
    if pool_meaningless:
        parallel_report["annotation"] = (
            "single worker/core: pool overhead only, "
            "not a parallelism measurement"
        )
    report: Dict[str, object] = {
        "slice": slice_info,
        "workers": pool_workers,
        "cpu_count": cpu_count,
        "backend": vectorized.get_backend(),
        "modes": {
            "serial_cold": mode_report(serial),
            "parallel_cold": parallel_report,
            "warm_cache": mode_report(warm),
        },
        "speedup": {
            "parallel_vs_serial": round(serial_s / parallel["seconds"], 3)
            if parallel["seconds"] > 0 and not pool_meaningless
            else None,
            "warm_vs_serial": round(serial_s / warm["seconds"], 3)
            if warm["seconds"] > 0
            else None,
            "warm_fraction_of_serial": round(warm["seconds"] / serial_s, 4)
            if serial_s > 0
            else None,
        },
        "rows_identical": identical,
        "cache_entries": cache.stats().entries,
        "numeric": _compare_backends(specs, seeds=seeds),
    }
    return report


def run_bench_huge_n(
    *,
    n_values: Optional[List[int]] = None,
    epsilons: Optional[List[float]] = None,
    exact_cap: int = HUGE_N_EXACT_CAP,
    max_interarrival: float = HUGE_N_X_MS,
    seed: int = 1,
    quick: bool = False,
) -> Dict[str, object]:
    """The huge-n slice: exact vs fptas wall and energy over n sweeps.

    For each ``n`` one agreeable sporadic trace is generated columnwise
    (:func:`repro.workloads.synthetic.agreeable_trace`, never building
    Task objects for the fptas path), then:

    * the exact Section 5 DP solves it while ``n <= exact_cap`` (the exact
      tier's loop count grows superlinearly in cluster size, so the cap
      keeps the sweep bounded);
    * the fptas tier solves it at every ε via the columns path, checking
      the (1+ε) energy bound wherever the exact energy is known;
    * while ``n`` is small enough, the object-path fptas re-solves the
      same trace and its energy must be float-identical to the columns
      path (``rows_identical`` -- both share one scalar evaluator).

    The report records the measured exact-vs-fptas wall crossover (the
    smallest measured ``n`` where the first ε's fptas solve is faster
    than the exact solve) and the worst relative energy gap per ε.  A
    ``modes.serial_cold.seconds`` entry (total fptas wall at the first ε)
    makes the report gateable by :func:`check_serial_regression`.
    """
    from repro.core.agreeable import solve_agreeable
    from repro.core.fptas import (
        solve_agreeable_fptas,
        solve_agreeable_fptas_columns,
    )
    from repro.experiments.config import experiment_platform
    from repro.models.task import Task, TaskSet
    from repro.workloads.synthetic import agreeable_trace

    if quick:
        n_values = n_values if n_values is not None else QUICK_HUGE_N_VALUES
        epsilons = epsilons if epsilons is not None else QUICK_HUGE_N_EPSILONS
        if exact_cap == HUGE_N_EXACT_CAP:
            exact_cap = QUICK_HUGE_N_EXACT_CAP
    else:
        n_values = n_values if n_values is not None else HUGE_N_VALUES
        epsilons = epsilons if epsilons is not None else HUGE_N_EPSILONS
    if not n_values or not epsilons:
        raise ValueError("huge-n slice needs at least one n and one epsilon")
    # xi_m=0 keeps the exact DP on its gap-pruned fast path, so the
    # crossover compares both tiers at their best.
    platform = experiment_platform(xi_m=0.0)

    points: List[Dict[str, object]] = []
    all_bounds = True
    all_identical = True
    worst_gap: Dict[str, float] = {}
    primary_total_s = 0.0
    for n in n_values:
        releases, deadlines, workloads = agreeable_trace(
            n=n, max_interarrival=max_interarrival, seed=seed
        )
        point: Dict[str, object] = {"n": n}
        exact_energy: Optional[float] = None
        if n <= exact_cap:
            tasks = TaskSet.presorted(
                tuple(
                    Task(r, d, w, f"H{i}")
                    for i, (r, d, w) in enumerate(
                        zip(releases, deadlines, workloads)
                    )
                )
            )
            start = time.perf_counter()
            exact = solve_agreeable(tasks, platform)
            exact_s = time.perf_counter() - start
            exact_energy = exact.predicted_energy
            point["exact"] = {
                "seconds": round(exact_s, 4),
                "energy_uj": exact_energy,
                "num_blocks": exact.num_blocks,
            }
        fptas_report: Dict[str, object] = {}
        for index, epsilon in enumerate(epsilons):
            start = time.perf_counter()
            cols = solve_agreeable_fptas_columns(
                releases, deadlines, workloads, platform, epsilon=epsilon
            )
            fptas_s = time.perf_counter() - start
            if index == 0:
                primary_total_s += fptas_s
            entry: Dict[str, object] = {
                "seconds": round(fptas_s, 4),
                "energy_uj": cols["energy"],
                "num_blocks": cols["num_blocks"],
            }
            if exact_energy is not None:
                gap = cols["energy"] / exact_energy - 1.0
                bound_ok = cols["energy"] <= (1.0 + epsilon) * exact_energy
                entry["gap"] = round(gap, 8)
                entry["bound_ok"] = bound_ok
                all_bounds = all_bounds and bound_ok
                key = f"{epsilon:g}"
                worst_gap[key] = max(worst_gap.get(key, 0.0), gap)
            if n <= HUGE_N_OBJECT_CAP:
                obj = solve_agreeable_fptas(
                    TaskSet(
                        [
                            Task(r, d, w, f"H{i}")
                            for i, (r, d, w) in enumerate(
                                zip(releases, deadlines, workloads)
                            )
                        ]
                    ),
                    platform,
                    epsilon=epsilon,
                )
                identical = (
                    obj.predicted_energy == cols["energy"]
                    and obj.num_blocks == cols["num_blocks"]
                )
                entry["rows_identical"] = identical
                all_identical = all_identical and identical
            fptas_report[f"{epsilon:g}"] = entry
        point["fptas"] = fptas_report
        points.append(point)

    primary = f"{epsilons[0]:g}"
    crossover: Dict[str, object] = {"epsilon": epsilons[0], "n": None}
    for point in points:
        exact = point.get("exact")
        entry = point["fptas"].get(primary)
        if exact is None or entry is None:
            continue
        if entry["seconds"] < exact["seconds"]:
            crossover["n"] = point["n"]
            crossover["exact_s"] = exact["seconds"]
            crossover["fptas_s"] = entry["seconds"]
            break
    if crossover["n"] is None:
        crossover["note"] = (
            f"exact no slower than fptas at every measured n <= {exact_cap}; "
            "beyond the cap only fptas completes"
        )
    return {
        "slice": {
            "name": "huge-n",
            "n_values": n_values,
            "epsilons": epsilons,
            "exact_cap": exact_cap,
            "max_interarrival": max_interarrival,
            "seed": seed,
        },
        "backend": vectorized.get_backend(),
        "points": points,
        "crossover": crossover,
        "energy_gap": {key: round(value, 8) for key, value in worst_gap.items()},
        "bound_ok": all_bounds,
        "rows_identical": all_identical,
        "modes": {"serial_cold": {"seconds": round(primary_total_s, 4)}},
    }


def render_bench_huge_n_table(report: Dict[str, object]) -> str:
    """Human-readable crossover table for one huge-n report."""
    sl = report["slice"]
    epsilons = sl["epsilons"]
    lines = [
        f"bench slice: huge-n n={sl['n_values']} eps={epsilons} "
        f"x={sl['max_interarrival']:g}ms seed={sl['seed']} "
        f"(exact capped at n={sl['exact_cap']}; backend {report['backend']})",
        f"{'n':>8s} {'exact s':>10s}"
        + "".join(
            f" {'fptas(' + format(eps, 'g') + ') s':>14s} {'gap':>11s}"
            for eps in epsilons
        ),
    ]
    for point in report["points"]:
        exact = point.get("exact")
        row = f"{point['n']:>8d} "
        row += f"{exact['seconds']:>10.3f}" if exact else f"{'-':>10s}"
        for eps in epsilons:
            entry = point["fptas"][f"{eps:g}"]
            gap = entry.get("gap")
            row += f" {entry['seconds']:>14.3f}"
            row += f" {gap:>11.2e}" if gap is not None else f" {'-':>11s}"
        lines.append(row)
    crossover = report["crossover"]
    if crossover.get("n") is not None:
        lines.append(
            f"crossover (eps={crossover['epsilon']:g}): fptas beats exact "
            f"from n={crossover['n']} "
            f"({crossover['fptas_s']:.3f}s vs {crossover['exact_s']:.3f}s)"
        )
    else:
        lines.append(f"crossover: {crossover.get('note', 'not measured')}")
    lines.append(
        f"(1+eps) bound held everywhere measured: {report['bound_ok']}; "
        f"columns/object fptas identical: {report['rows_identical']}"
    )
    return "\n".join(lines)


def run_bench_streaming(
    *,
    points: Optional[List[List[float]]] = None,
    mode: str = "poisson",
    seed: int = STREAMING_SEED,
    max_backlog: int = STREAMING_MAX_BACKLOG,
    ramp_rates: Optional[List[float]] = None,
    slo_p99_ms: float = STREAMING_SLO_P99_MS,
    quick: bool = False,
) -> Dict[str, object]:
    """The streaming slice: open-loop replay through the in-process sink.

    Each ``(rate, n)`` point replays a seeded arrival stream through
    SDEM-ON twice and records offered rate, P50/P99 virtual latency,
    deadline-miss %, shed count and uJ/job; the repeat's digest must
    match (``rows_identical`` -- the subsystem's byte-reproducibility
    contract, checked per run the way the engine slices cross-check
    modes).  Full mode adds the SLO ramp
    (:func:`repro.replay.find_max_sustainable_rate`), whose wall P99 is
    measured and therefore recorded but never gated.

    ``modes.serial_cold.seconds`` (total first-pass replay wall) makes
    the report gateable by :func:`check_serial_regression`, which also
    compares ``streaming.deadline_miss_total`` against the prior entry:
    new deadline misses fail the gate outright.
    """
    from repro.experiments.config import experiment_platform
    from repro.replay import ArrivalSpec, find_max_sustainable_rate, run_replay

    if points is None:
        points = QUICK_STREAMING_POINTS if quick else STREAMING_POINTS
    if not points:
        raise ValueError("streaming slice needs at least one (rate, n) point")
    platform = experiment_platform()

    point_reports: List[Dict[str, object]] = []
    all_identical = True
    serial_total_s = 0.0
    miss_total = 0
    shed_total = 0
    done_total = 0
    for rate, n in points:
        spec = ArrivalSpec(
            mode=mode, n=int(n), rate_jobs_s=float(rate), seed=seed
        )
        first = run_replay(spec, platform, max_backlog=max_backlog)
        repeat = run_replay(spec, platform, max_backlog=max_backlog)
        identical = first.digest == repeat.digest
        all_identical = all_identical and identical
        # Best-of-two wall: the repeat exists for the digest check anyway,
        # so use it to damp timer noise in the gated serial_cold figure
        # (the box's other load only ever adds time).
        serial_total_s += min(first.wall_seconds, repeat.wall_seconds)
        miss_total += first.counts.get("deadline_miss", 0)
        shed_total += first.counts.get("shed", 0)
        done_total += first.counts.get("done", 0)
        entry = first.to_wire()
        entry["rows_identical"] = identical
        point_reports.append(entry)

    report: Dict[str, object] = {
        "slice": {
            "name": "streaming",
            "mode": mode,
            "points": [[float(rate), int(n)] for rate, n in points],
            "seed": seed,
            "max_backlog": max_backlog,
        },
        "backend": vectorized.get_backend(),
        "points": point_reports,
        "streaming": {
            "deadline_miss_total": miss_total,
            "shed_total": shed_total,
            "done_total": done_total,
        },
        "rows_identical": all_identical,
        "modes": {"serial_cold": {"seconds": round(serial_total_s, 4)}},
    }
    if not quick:
        rates = ramp_rates if ramp_rates is not None else STREAMING_RAMP_RATES
        best, ramp_points = find_max_sustainable_rate(
            ArrivalSpec(mode=mode, n=STREAMING_RAMP_N, seed=seed),
            platform,
            rates_jobs_s=rates,
            slo_p99_ms=slo_p99_ms,
            max_backlog=max_backlog,
        )
        report["slo"] = {
            "slo_p99_ms": slo_p99_ms,
            "max_sustainable_rate_jobs_s": best,
            "ramp": [point.to_wire() for point in ramp_points],
        }
    return report


def render_bench_streaming_table(report: Dict[str, object]) -> str:
    """Human-readable latency/energy table for one streaming report."""
    sl = report["slice"]
    lines = [
        f"bench slice: streaming mode={sl['mode']} seed={sl['seed']} "
        f"max_backlog={sl['max_backlog']} (backend {report['backend']})",
        f"{'rate j/s':>9s} {'n':>8s} {'p50 ms':>8s} {'p99 ms':>8s} "
        f"{'miss %':>7s} {'shed':>7s} {'uJ/job':>10s} {'repro':>6s}",
    ]
    for point in report["points"]:
        virtual = point.get("virtual") or {}
        energy = point.get("energy") or {}
        counts = point.get("counts", {})
        lines.append(
            f"{point['offered_rate_jobs_s']:>9.1f} "
            f"{counts.get('total', 0):>8d} "
            f"{virtual.get('p50_ms', float('nan')):>8.2f} "
            f"{virtual.get('p99_ms', float('nan')):>8.2f} "
            f"{point.get('deadline_miss_pct', 0.0):>7.3f} "
            f"{counts.get('shed', 0):>7d} "
            f"{energy.get('per_job_uj', float('nan')):>10.1f} "
            f"{'ok' if point.get('rows_identical') else 'FAIL':>6s}"
        )
    totals = report["streaming"]
    lines.append(
        f"totals: {totals['done_total']} done, "
        f"{totals['deadline_miss_total']} deadline miss(es), "
        f"{totals['shed_total']} shed; digests reproducible: "
        f"{report['rows_identical']}"
    )
    slo = report.get("slo")
    if slo is not None:
        best = slo["max_sustainable_rate_jobs_s"]
        best_text = f"{best:g} jobs/s" if best is not None else "none"
        lines.append(
            f"max sustainable rate at P99 <= {slo['slo_p99_ms']:g} ms: "
            f"{best_text} (measured, machine-dependent)"
        )
        for point in slo["ramp"]:
            lines.append(
                f"  ramp {point['rate_jobs_s']:>7.1f} j/s: "
                f"wall p99 {point['p99_wall_ms']:.3f} ms, "
                f"shed {point['shed']}, miss {point['deadline_miss']} "
                f"-> {'sustainable' if point['sustainable'] else 'over SLO'}"
            )
    return "\n".join(lines)


def _latency_percentile(values: List[float], p: float) -> Optional[float]:
    """Nearest-rank percentile of measured wall latencies."""
    if not values:
        return None
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(p / 100.0 * (len(ordered) - 1))))
    return ordered[rank]


def run_bench_service(
    *,
    worker_counts: Optional[List[int]] = None,
    n: Optional[int] = None,
    rate_jobs_s: float = SERVICE_RATE_JOBS_S,
    seed: int = SERVICE_SEED,
    clients: int = 4,
    quick: bool = False,
) -> Dict[str, object]:
    """The service slice: open-loop replay against sharded worker pools.

    For each worker count W a fresh :class:`repro.service.SolveService`
    with ``shards=W`` (its own worker processes, its own empty result
    cache) is driven twice by the replay harness's open-loop generator --
    the same seeded Poisson stream every time, platform-cycled so the
    consistent-hash ring spreads load across all W shards.  The first
    pass is all cache misses (solve throughput), the repeat is all hits
    (service-overhead throughput); both record throughput and wall P50 /
    P99.

    ``modes.serial_cold`` / ``modes.warm_cache`` carry the one-worker
    walls, making the report gateable by :func:`check_serial_regression`
    exactly like the engine slices.  On a single-core host the scaling
    ratios are pool overhead, not parallelism, so
    ``speedup.parallel_vs_serial`` is ``null`` with an annotation -- the
    same convention the fig6/synthetic trajectory entries use.
    """
    import asyncio
    import tempfile

    from repro.replay import ArrivalSpec
    from repro.replay.sinks import replay_service
    from repro.service.server import SolveService

    if worker_counts is None:
        worker_counts = (
            QUICK_SERVICE_WORKER_COUNTS if quick else SERVICE_WORKER_COUNTS
        )
    if n is None:
        n = QUICK_SERVICE_N_JOBS if quick else SERVICE_N_JOBS
    if any(count < 1 for count in worker_counts):
        raise ValueError(f"worker counts must be >= 1, got {worker_counts}")
    spec = ArrivalSpec(mode="poisson", n=n, rate_jobs_s=rate_jobs_s, seed=seed)
    jobs = list(spec.jobs())
    capacity = max(64, 2 * n)  # never shed: throughput, not admission, is measured

    async def drive(shards: int) -> Dict[str, object]:
        cache = ResultCache(tempfile.mkdtemp(prefix="repro-bench-service-"))
        service = SolveService(capacity=capacity, shards=shards, cache=cache)
        server = await service.serve_tcp("127.0.0.1", 0)
        host, port = server.sockets[0].getsockname()[:2]
        try:
            passes = {}
            for label in ("cold", "warm"):
                outcome = await replay_service(
                    jobs,
                    host=host,
                    port=port,
                    clients=clients,
                    platform_cycle=SERVICE_PLATFORM_CYCLE,
                )
                done = outcome.completed
                latencies = [record.latency_ms for record in done]
                wall_s = outcome.wall_seconds
                passes[label] = {
                    "wall_s": round(wall_s, 4),
                    "throughput_jobs_s": round(len(done) / wall_s, 2)
                    if wall_s > 0
                    else None,
                    "p50_ms": _latency_percentile(latencies, 50.0),
                    "p99_ms": _latency_percentile(latencies, 99.0),
                    "done": len(done),
                    "shed": sum(1 for r in outcome.records if r.status == "shed"),
                    "errors": sum(
                        1
                        for r in outcome.records
                        if r.status in ("error", "timeout")
                    ),
                }
        finally:
            server.close()
            await server.wait_closed()
            await service.drain()
        return passes

    points: List[Dict[str, object]] = []
    for count in worker_counts:
        passes = asyncio.run(drive(count))
        points.append({"shards": count, **passes})

    cpu_count = os.cpu_count()
    pool_meaningless = (cpu_count or 1) <= 1 or max(worker_counts) <= 1
    baseline = points[0]
    base_cold = baseline["cold"]["throughput_jobs_s"]
    best_cold = max(
        (p["cold"]["throughput_jobs_s"] or 0.0) for p in points[1:]
    ) if len(points) > 1 else None
    report: Dict[str, object] = {
        "slice": {
            "name": "service",
            "worker_counts": [int(count) for count in worker_counts],
            "n": n,
            "rate_jobs_s": rate_jobs_s,
            "seed": seed,
            "clients": clients,
            "platforms": len(SERVICE_PLATFORM_CYCLE),
        },
        "backend": vectorized.get_backend(),
        "cpu_count": cpu_count,
        "points": points,
        "speedup": {
            "parallel_vs_serial": round(best_cold / base_cold, 3)
            if best_cold and base_cold and not pool_meaningless
            else None,
        },
        "modes": {
            "serial_cold": {"seconds": baseline["cold"]["wall_s"]},
            "warm_cache": {"seconds": baseline["warm"]["wall_s"]},
        },
    }
    if pool_meaningless:
        report["speedup"]["annotation"] = (
            "single worker/core: multi-shard rows measure worker-pool "
            "overhead, not a parallelism measurement"
        )
    return report


def render_bench_service_table(report: Dict[str, object]) -> str:
    """Human-readable worker-scaling table for one service report."""
    sl = report["slice"]
    lines = [
        f"bench slice: service n={sl['n']} rate={sl['rate_jobs_s']:g} j/s "
        f"seed={sl['seed']} clients={sl['clients']} "
        f"platforms={sl['platforms']} (backend {report['backend']}, "
        f"{report['cpu_count']} core(s))",
        f"{'shards':>6s} {'pass':>5s} {'wall s':>8s} {'thr j/s':>9s} "
        f"{'p50 ms':>8s} {'p99 ms':>8s} {'done':>5s} {'shed':>5s} {'err':>4s}",
    ]
    for point in report["points"]:
        for label in ("cold", "warm"):
            row = point[label]
            lines.append(
                f"{point['shards']:>6d} {label:>5s} "
                f"{row['wall_s']:>8.3f} "
                f"{row['throughput_jobs_s'] or float('nan'):>9.1f} "
                f"{row['p50_ms'] or float('nan'):>8.2f} "
                f"{row['p99_ms'] or float('nan'):>8.2f} "
                f"{row['done']:>5d} {row['shed']:>5d} {row['errors']:>4d}"
            )
    speed = report["speedup"]
    ratio = speed.get("parallel_vs_serial")
    lines.append(
        "best multi-shard vs 1-shard cold throughput: "
        + (f"{ratio:g}x" if ratio is not None else "null")
    )
    if "annotation" in speed:
        lines.append(f"note: {speed['annotation']}")
    return "\n".join(lines)


def check_serial_regression(
    report: Dict[str, object],
    trajectory: List[Dict[str, object]],
    *,
    threshold: float = 0.25,
    min_delta_s: float = 0.05,
) -> Optional[str]:
    """Gate a fresh report against the recorded performance history.

    Compares the new ``serial_cold`` *and* ``warm_cache`` wall times
    against the most recent trajectory entry with the same backend and the
    same slice; returns a failure message when either mode is more than
    ``threshold`` slower *and* at least ``min_delta_s`` slower in absolute
    terms (quick slices finish in ~10ms, where a 25% relative gate alone
    would trip on timer noise), ``None`` otherwise.  Warm-cache blowups
    used to land silently -- the gate read only ``serial_cold`` -- so a
    cache-path regression (slow keying, lost hits) never failed CI.
    Reports without a ``warm_cache`` mode (the huge-n and streaming
    slices) are gated on ``serial_cold`` alone.  Streaming reports carry
    an extra, non-timing gate: ``streaming.deadline_miss_total`` may
    never exceed the prior entry's (zero tolerance -- the replay is
    deterministic, so any new miss is a scheduling change, not noise).
    With no comparable prior entry (first run, new slice, other backend)
    the gate is skipped.
    """
    prior: Optional[Dict[str, object]] = None
    for entry in reversed(trajectory):
        if not isinstance(entry, dict):
            continue
        if entry.get("backend") != report.get("backend"):
            continue
        if entry.get("slice") != report.get("slice"):
            continue
        prior = entry
        break
    if prior is None:
        return None
    prior_streaming = prior.get("streaming")
    new_streaming = report.get("streaming")
    if isinstance(prior_streaming, dict) and isinstance(new_streaming, dict):
        try:
            prev_miss = int(prior_streaming["deadline_miss_total"])
            new_miss = int(new_streaming["deadline_miss_total"])
        except (KeyError, TypeError, ValueError):
            prev_miss = new_miss = 0
        if new_miss > prev_miss:
            return (
                f"streaming deadline-miss regression: {new_miss} miss(es) vs "
                f"{prev_miss} recorded (the replay is deterministic; any "
                "increase is a real scheduling change)"
            )
    for mode in ("serial_cold", "warm_cache"):
        try:
            prev_s = float(prior["modes"][mode]["seconds"])  # type: ignore[index]
            new_s = float(report["modes"][mode]["seconds"])  # type: ignore[index]
        except (KeyError, TypeError, ValueError):
            continue
        if prev_s <= 0.0:
            continue
        if new_s > prev_s * (1.0 + threshold) and new_s - prev_s >= min_delta_s:
            return (
                f"{mode} regression: {new_s:.3f}s vs {prev_s:.3f}s recorded "
                f"({(new_s / prev_s - 1.0) * 100.0:+.0f}% exceeds the "
                f"{threshold * 100.0:.0f}% gate)"
            )
    return None


def render_bench_table(report: Dict[str, object]) -> str:
    """Human-readable speedup table for one :func:`run_bench` report."""
    sl = report["slice"]
    modes = report["modes"]
    speed = report["speedup"]
    serial_s = modes["serial_cold"]["seconds"]
    if "benchmark" in sl:
        slice_line = (
            f"bench slice: fig6-{sl['benchmark']} U={sl['u_values']} "
            f"seeds={sl['seeds']} n={sl['instances']} "
        )
    else:
        slice_line = (
            f"bench slice: synthetic x={sl['x_values']} "
            f"seeds={sl['seeds']} n={sl['trace_length']} "
        )
    lines = [
        slice_line
        + f"({sl['units']} work units; {report['workers']} worker(s), "
        f"{report['cpu_count']} cpu(s))",
        f"{'mode':<14s} {'seconds':>9s} {'speedup':>9s} "
        f"{'solver calls':>13s} {'cached units':>13s}",
    ]
    mode_rows = (
        ("serial cold", "serial_cold"),
        ("parallel cold", "parallel_cold"),
        ("warm cache", "warm_cache"),
    )
    for label, key in mode_rows:
        mode = modes[key]
        if key == "parallel_cold" and "annotation" in mode:
            speedup_cell = "     n/a "
        else:
            speedup = serial_s / mode["seconds"] if mode["seconds"] > 0 else 0.0
            speedup_cell = f"{speedup:>8.2f}x"
        lines.append(
            f"{label:<14s} {mode['seconds']:>9.3f} {speedup_cell} "
            f"{mode['solver_calls']:>13d} {mode['cached_units']:>13d}"
        )
    annotation = modes["parallel_cold"].get("annotation")
    if annotation:
        lines.append(f"note: parallel cold -- {annotation}")
    lines.append(
        f"{'wall split':<14s} {'solver s':>9s} {'engine s':>9s} {'other s':>9s}"
    )
    for label, key in mode_rows:
        split = modes[key].get("split")
        if not split:
            continue
        lines.append(
            f"{label:<14s} {split['solver_s']:>9.3f} "
            f"{split['engine_s']:>9.3f} {split['other_s']:>9.3f}"
        )
    lines.append(
        f"rows identical across modes: {report['rows_identical']}; "
        f"warm run took {speed['warm_fraction_of_serial'] * 100.0:.1f}% "
        f"of cold serial"
    )
    numeric = report.get("numeric")
    if numeric is None:
        lines.append(
            "numeric backends: numpy not importable, scalar-only run"
        )
    else:
        lines.append(
            f"{'backend':<14s} {'seconds':>9s} {'solver s':>9s} "
            f"{'solver calls':>13s}"
        )
        for backend in ("scalar", "numpy", "jit"):
            entry = numeric["backends"].get(backend)
            if entry is None:
                continue
            lines.append(
                f"{backend:<14s} {entry['seconds']:>9.3f} "
                f"{entry['solver_seconds']:>9.3f} "
                f"{entry['solver_calls']:>13d}"
            )
        speedups = numeric["speedup"]

        def fmt(value: Optional[float]) -> str:
            return f"{value:.2f}x" if value is not None else "n/a"

        if "wall" in speedups:
            lines.append(
                f"numpy vs scalar (serial cold): {fmt(speedups['wall'])} "
                f"wall, {fmt(speedups['numeric_core'])} numeric core; "
                f"rows identical across backends: {numeric['rows_identical']}"
            )
        if "jit_wall" in speedups:
            lines.append(
                f"jit vs {speedups['jit_baseline']} (serial cold): "
                f"{fmt(speedups['jit_wall'])} wall, "
                f"{fmt(speedups['jit_numeric_core'])} numeric core"
            )
    return "\n".join(lines)


def load_trajectory(path: str) -> List[Dict[str, object]]:
    """Existing bench history at ``path``, tolerating the legacy layout.

    Early revisions wrote one bare report dict; wrap it as the first
    trajectory entry so no measurement is lost by the migration.
    """
    if not os.path.exists(path):
        return []
    try:
        with open(path, encoding="utf-8") as handle:
            existing = json.load(handle)
    except (OSError, ValueError):
        return []
    if isinstance(existing, dict) and isinstance(
        existing.get("trajectory"), list
    ):
        return list(existing["trajectory"])
    if isinstance(existing, dict):
        return [existing]
    return []


def write_bench_json(report: Dict[str, object], path: str) -> None:
    """Append the report to the trajectory list at ``path``.

    The file holds ``{"trajectory": [oldest, ..., newest]}`` so repeated
    bench runs build a performance history CI can plot or diff; a legacy
    single-report file is migrated in place, not clobbered.
    """
    trajectory = load_trajectory(path)
    stamped = dict(report)
    # Report metadata, not result rows: the trajectory file is a wall-clock
    # performance history, so the timestamp is the point.
    # repro-lint: allow[DET001] generated_at is bench-report metadata
    stamped["generated_at"] = datetime.now(timezone.utc).isoformat(
        timespec="seconds"
    )
    trajectory.append(stamped)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"trajectory": trajectory}, handle, indent=2, sort_keys=True)
        handle.write("\n")

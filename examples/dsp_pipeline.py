#!/usr/bin/env python3
"""DSP pipeline: online scheduling of DSPstone FFT / matmul streams.

Reproduces the Figure 6 scenario at example scale: eight phase-shifted
benchmark instance streams land on an 8-core Cortex-A57 with shared DRAM,
and three online schedulers compete on the same traces:

* SDEM-ON   -- the paper's heuristic (procrastinate + align + balance);
* MBKPS     -- per-core Optimal Available, memory naps in every gap;
* MBKP      -- per-core Optimal Available, memory always on.

Run:  python examples/dsp_pipeline.py [fft|matmul]
"""

from __future__ import annotations

import sys

from repro import SdemOnlinePolicy, mbkp, mbkps, simulate
from repro.experiments import experiment_platform, render_ascii_chart
from repro.workloads import dspstone_trace


def main(benchmark: str = "fft") -> None:
    platform = experiment_platform()  # Table 4 stars: 4 W DRAM, 40 ms xi_m
    print(f"benchmark: {benchmark}, platform: 8x A57 + 4 W DRAM (xi_m 40 ms)\n")

    chart_points = []
    for u in (2, 4, 6, 8):
        trace = dspstone_trace(
            benchmark, utilization_factor=float(u), n=48, seed=7, streams=8
        )
        horizon = (min(t.release for t in trace), max(t.deadline for t in trace))
        results = {
            "SDEM-ON": simulate(SdemOnlinePolicy(platform), trace, platform, horizon=horizon),
            "MBKPS": simulate(mbkps(platform), trace, platform, horizon=horizon),
            "MBKP": simulate(mbkp(platform), trace, platform, horizon=horizon),
        }
        base = results["MBKP"].total_energy
        print(f"U = {u} (lower = busier); trace of {len(trace)} instances")
        for name, result in results.items():
            bd = result.breakdown
            print(
                f"  {name:<8s} total {bd.total / 1000.0:9.2f} mJ  "
                f"memory busy {bd.memory_busy_time:8.1f} ms  "
                f"asleep {bd.memory_sleep_time:8.1f} ms  "
                f"saving vs MBKP {(1 - bd.total / base) * 100.0:6.1f}%"
            )
        chart_points.append(
            (
                f"U={u}",
                {
                    "SDEM-ON": (1 - results["SDEM-ON"].total_energy / base) * 100,
                    "MBKPS": (1 - results["MBKPS"].total_energy / base) * 100,
                },
            )
        )
        print()
    print(render_ascii_chart("system energy saving vs MBKP (%)", chart_points))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "fft")

"""SDEM core algorithms (the paper's contribution).

Modules map one-to-one onto the paper's sections:

* :mod:`repro.core.common_release` -- Section 4's optimal schemes for
  common-release-time tasks (``alpha = 0`` and ``alpha != 0``);
* :mod:`repro.core.blocks` / :mod:`repro.core.blocks_alpha` -- Section 5's
  per-block local optimum for agreeable-deadline task subsets;
* :mod:`repro.core.agreeable` -- Section 5's dynamic programs over blocks;
* :mod:`repro.core.online` -- Section 6's SDEM-ON online heuristic;
* :mod:`repro.core.transition` -- Section 7's transition-overhead-aware
  extensions (Table 3);
* :mod:`repro.core.bounded` -- Section 3's bounded-core analysis
  (Theorem 1 closed forms and exact/heuristic partitioners);
* :mod:`repro.core.reference` -- slow, brutally simple reference
  optimizers the test-suite certifies the fast schemes against;
* :mod:`repro.core.vectorized` -- the batched NumPy numeric core behind
  the block / case-scan hot paths (``REPRO_NUMERIC`` selects the backend);
* :mod:`repro.core.fptas` -- the ε-approximate solver tier
  (``--solver exact|fptas``) for huge-n instances the exact DPs cannot
  reach (after Antoniadis, Huang & Ott, arXiv:1407.0892).
"""

from repro.core.common_release import (
    CommonReleaseSolution,
    solve_common_release,
    solve_common_release_alpha_zero,
    solve_common_release_alpha_nonzero,
)
from repro.core.blocks import BlockSolution, TaskPlacement, block_energy, solve_block
from repro.core.agreeable import AgreeableSolution, solve_agreeable
from repro.core.transition import (
    overhead_energy_at_delta,
    solve_common_release_with_overhead,
)
from repro.core.online import SdemOnlinePolicy
from repro.core.bounded import (
    BoundedSolution,
    balanced_partition_energy,
    optimal_busy_interval_two_cores,
    partition_tasks,
    solve_bounded_common_deadline,
)
from repro.core.heterogeneous import (
    HeterogeneousSolution,
    solve_common_release_heterogeneous,
)
from repro.core.discrete import (
    a57_levels,
    quantization_overhead,
    quantize_schedule,
    split_interval,
)
from repro.core.partitioned import (
    PartitionedSolution,
    solve_partitioned_common_release,
)
from repro.core.islands import IslandSolution, solve_islands_common_release
from repro.core.vectorized import (
    available_backends,
    get_backend,
    set_backend,
)
from repro.core.fptas import (
    get_solver_epsilon,
    get_solver_tier,
    set_solver_tier,
    solve_agreeable_fptas,
    solve_agreeable_fptas_columns,
    solve_common_release_fptas,
)

__all__ = [
    "available_backends",
    "get_backend",
    "set_backend",
    "get_solver_epsilon",
    "get_solver_tier",
    "set_solver_tier",
    "solve_agreeable_fptas",
    "solve_agreeable_fptas_columns",
    "solve_common_release_fptas",
    "CommonReleaseSolution",
    "solve_common_release",
    "solve_common_release_alpha_zero",
    "solve_common_release_alpha_nonzero",
    "BlockSolution",
    "TaskPlacement",
    "block_energy",
    "solve_block",
    "AgreeableSolution",
    "solve_agreeable",
    "overhead_energy_at_delta",
    "solve_common_release_with_overhead",
    "SdemOnlinePolicy",
    "BoundedSolution",
    "balanced_partition_energy",
    "optimal_busy_interval_two_cores",
    "partition_tasks",
    "solve_bounded_common_deadline",
    "HeterogeneousSolution",
    "solve_common_release_heterogeneous",
    "a57_levels",
    "quantization_overhead",
    "quantize_schedule",
    "split_interval",
    "PartitionedSolution",
    "solve_partitioned_common_release",
    "IslandSolution",
    "solve_islands_common_release",
]

"""Bounded admission queue with priority lanes and backpressure.

Admission control is the service's first line of defence: a request is
either **admitted** -- at which point it is guaranteed a terminal response
(result, deadline expiry or cancellation) -- or **rejected at the door**
with an HTTP-429-style error carrying ``retry_after_ms``.  A rejected
request is *never partially executed*: it never reaches the batcher, the
worker pool or the result cache (the saturation property tests pin this).

Two lanes with strict priority:

* ``interactive`` -- latency-sensitive one-off solves; always admitted
  while there is any capacity left;
* ``sweep`` -- bulk experiment traffic; first to go when the service
  degrades.

Degradation policy: when the queue depth reaches
``ceil(shed_threshold * capacity)`` the queue enters *degraded mode* and
sheds sweep-lane arrivals (code ``SHEDDING``) while still admitting
interactive ones; at full capacity everything is rejected
(``QUEUE_FULL``).  Degraded mode clears when depth falls back under the
threshold.  ``retry_after_ms`` scales linearly with occupancy so clients
back off harder the fuller the queue is.

The queue is thread-safe but non-blocking: the asyncio server polls it
via an event, worker threads never touch it.  The clock is injectable so
deadline semantics are testable without sleeping.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.service.protocol import (
    E_QUEUE_FULL,
    E_SHEDDING,
    LANE_INTERACTIVE,
    LANE_SWEEP,
    SolveRequest,
)

__all__ = [
    "AdmitResult",
    "QueueEntry",
    "AdmissionQueue",
    "ShardedAdmissionQueue",
    "split_capacity",
]


@dataclass
class QueueEntry:
    """One admitted request waiting for dispatch."""

    request: SolveRequest
    enqueued_at: float
    expires_at: Optional[float] = None
    cancelled: bool = False
    #: Free slot for the transport layer (the server parks the asyncio
    #: future that resolves into the client's response here).
    context: object = None
    #: Shard that owns this entry (``None`` under the inline batcher).
    shard: Optional[int] = None

    @property
    def lane(self) -> str:
        return self.request.lane

    def expired(self, now: float) -> bool:
        return self.expires_at is not None and now >= self.expires_at


@dataclass(frozen=True)
class AdmitResult:
    """Outcome of an admission attempt."""

    admitted: bool
    entry: Optional[QueueEntry] = None
    code: Optional[str] = None
    message: Optional[str] = None
    retry_after_ms: Optional[float] = None
    #: Shard that admitted or rejected the request (``None`` when the
    #: service runs without shards).  Rejections carry it into the error
    #: envelope so a client can see *which* shard shed it.
    shard: Optional[int] = None


class AdmissionQueue:
    """Bounded two-lane FIFO with strict interactive-over-sweep priority."""

    def __init__(
        self,
        capacity: int = 256,
        *,
        shed_threshold: float = 0.8,
        base_retry_after_ms: float = 250.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if not (0.0 < shed_threshold <= 1.0):
            raise ValueError(
                f"shed_threshold must be in (0, 1], got {shed_threshold}"
            )
        self.capacity = capacity
        self.shed_at = max(1, math.ceil(shed_threshold * capacity))
        self.base_retry_after_ms = base_retry_after_ms
        self._clock = clock
        self._lanes: Dict[str, List[QueueEntry]] = {
            LANE_INTERACTIVE: [],
            LANE_SWEEP: [],
        }
        self._lock = threading.Lock()
        self._depth_peak = 0
        #: Called (outside the lock) after every successful offer; the
        #: server uses it to wake the dispatch loop.
        self.on_enqueue: Optional[Callable[[], None]] = None

    # -- introspection ------------------------------------------------------

    @property
    def depth(self) -> int:
        with self._lock:
            return self._depth_locked()

    def _depth_locked(self) -> int:
        return sum(len(lane) for lane in self._lanes.values())

    @property
    def depth_peak(self) -> int:
        """High-water mark: the saturation tests assert ``<= capacity``."""
        with self._lock:
            return self._depth_peak

    def lane_depths(self) -> Dict[str, int]:
        with self._lock:
            return {name: len(lane) for name, lane in self._lanes.items()}

    @property
    def degraded(self) -> bool:
        """True while sweep-lane shedding is active."""
        with self._lock:
            return self._depth_locked() >= self.shed_at

    def _retry_after_ms(self, depth: int) -> float:
        """Back off proportionally to occupancy (full queue => 2x base)."""
        return self.base_retry_after_ms * (1.0 + depth / self.capacity)

    # -- admission ----------------------------------------------------------

    def offer(self, request: SolveRequest) -> AdmitResult:
        """Admit ``request`` or reject it with a backpressure error.

        The capacity invariant is enforced here and only here: the queue
        can never hold more than ``capacity`` entries, so an admitted
        request always has a seat and a rejected one leaves no trace.
        """
        now = self._clock()
        with self._lock:
            depth = self._depth_locked()
            if depth >= self.capacity:
                return AdmitResult(
                    admitted=False,
                    code=E_QUEUE_FULL,
                    message=(
                        f"admission queue full ({depth}/{self.capacity}); "
                        "retry after the indicated backoff"
                    ),
                    retry_after_ms=self._retry_after_ms(depth),
                )
            if depth >= self.shed_at and request.lane == LANE_SWEEP:
                return AdmitResult(
                    admitted=False,
                    code=E_SHEDDING,
                    message=(
                        f"degraded mode: queue at {depth}/{self.capacity} "
                        f"(shed threshold {self.shed_at}); sweep-lane load "
                        "is being shed, interactive requests still admitted"
                    ),
                    retry_after_ms=self._retry_after_ms(depth),
                )
            expires_at = (
                now + request.timeout_ms / 1000.0
                if request.timeout_ms is not None
                else None
            )
            entry = QueueEntry(request=request, enqueued_at=now, expires_at=expires_at)
            self._lanes[request.lane].append(entry)
            self._depth_peak = max(self._depth_peak, self._depth_locked())
        if self.on_enqueue is not None:
            self.on_enqueue()
        return AdmitResult(admitted=True, entry=entry)

    # -- dispatch -----------------------------------------------------------

    def pop_batch(
        self, max_items: int
    ) -> Tuple[List[QueueEntry], List[QueueEntry], List[QueueEntry]]:
        """Dequeue up to ``max_items`` live entries.

        Returns ``(ready, expired, cancelled)``.  Interactive entries
        dequeue before any sweep entry; FIFO within a lane.  Expired and
        cancelled entries are drained eagerly (they never count against
        ``max_items``) so a stale backlog cannot starve live work.
        """
        now = self._clock()
        ready: List[QueueEntry] = []
        expired: List[QueueEntry] = []
        cancelled: List[QueueEntry] = []
        with self._lock:
            for lane in (LANE_INTERACTIVE, LANE_SWEEP):
                keep: List[QueueEntry] = []
                for entry in self._lanes[lane]:
                    if entry.cancelled:
                        cancelled.append(entry)
                    elif entry.expired(now):
                        expired.append(entry)
                    elif len(ready) < max_items:
                        ready.append(entry)
                    else:
                        keep.append(entry)
                self._lanes[lane] = keep
        return ready, expired, cancelled

    def cancel(self, request_id: str) -> bool:
        """Mark a pending request cancelled; True when it was still queued."""
        with self._lock:
            for lane in self._lanes.values():
                for entry in lane:
                    if entry.request.id == request_id and not entry.cancelled:
                        entry.cancelled = True
                        return True
        return False

    def drain(self) -> List[QueueEntry]:
        """Remove and return every queued entry (graceful shutdown)."""
        with self._lock:
            remaining = [
                entry
                for lane in (LANE_INTERACTIVE, LANE_SWEEP)
                for entry in self._lanes[lane]
            ]
            for lane in self._lanes.values():
                lane.clear()
        return remaining


# ---------------------------------------------------------------------------
# Sharded admission: per-shard lanes behind one front door
# ---------------------------------------------------------------------------


def split_capacity(capacity: int, shards: int) -> List[int]:
    """Split ``capacity`` seats exactly across ``shards`` queues.

    The first ``capacity % shards`` shards take the remainder seat, so the
    per-shard bounds always sum to the configured total -- the aggregate
    ``depth_peak <= capacity`` audit survives sharding unchanged.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if capacity < shards:
        raise ValueError(
            f"capacity {capacity} cannot seat {shards} shards; every shard "
            "needs at least one seat"
        )
    base, extra = divmod(capacity, shards)
    return [base + (1 if index < extra else 0) for index in range(shards)]


class ShardedAdmissionQueue:
    """N per-shard :class:`AdmissionQueue` lanes behind one ``offer``.

    ``router`` maps a request to its shard index (the service passes the
    consistent-hash ring's lookup keyed on the platform fingerprint).
    Each shard keeps the full two-lane shed/retry_after semantics over
    its *own* slice of the capacity: one platform's burst degrades and
    then fills only the shard it hashes to, while the other shards keep
    admitting both lanes.  Rejections are stamped with the shard index so
    the error envelope can surface which shard shed.
    """

    def __init__(
        self,
        shards: int,
        router: Callable[[SolveRequest], int],
        capacity: int = 256,
        *,
        shed_threshold: float = 0.8,
        base_retry_after_ms: float = 250.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        seats = split_capacity(capacity, shards)
        self.capacity = capacity
        self.router = router
        self.shards: List[AdmissionQueue] = [
            AdmissionQueue(
                seat_count,
                shed_threshold=shed_threshold,
                base_retry_after_ms=base_retry_after_ms,
                clock=clock,
            )
            for seat_count in seats
        ]
        self._depth_peak = 0
        #: Called (outside any lock) with the shard index after every
        #: successful offer; the server wakes that shard's dispatch loop.
        self.on_enqueue: Optional[Callable[[int], None]] = None
        for index, shard_queue in enumerate(self.shards):
            shard_queue.on_enqueue = self._notifier(index)

    def _notifier(self, index: int) -> Callable[[], None]:
        def notify() -> None:
            if self.on_enqueue is not None:
                self.on_enqueue(index)

        return notify

    # -- introspection ------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    @property
    def depth(self) -> int:
        return sum(shard.depth for shard in self.shards)

    def shard_depth(self, shard: int) -> int:
        return self.shards[shard].depth

    def shard_depths(self) -> List[int]:
        return [shard.depth for shard in self.shards]

    @property
    def depth_peak(self) -> int:
        """Aggregate high-water mark (offers run on the event-loop thread,
        so the post-offer sample below never misses a concurrent admit)."""
        return self._depth_peak

    def lane_depths(self) -> Dict[str, int]:
        totals = {LANE_INTERACTIVE: 0, LANE_SWEEP: 0}
        for shard in self.shards:
            for lane, count in shard.lane_depths().items():
                totals[lane] += count
        return totals

    @property
    def degraded(self) -> bool:
        """True while *any* shard is shedding its sweep lane."""
        return any(shard.degraded for shard in self.shards)

    # -- admission ----------------------------------------------------------

    def offer(self, request: SolveRequest) -> AdmitResult:
        """Route ``request`` to its shard and delegate admission."""
        shard = self.router(request)
        if not 0 <= shard < len(self.shards):
            raise ValueError(
                f"router returned shard {shard}, valid range is "
                f"0..{len(self.shards) - 1}"
            )
        result = self.shards[shard].offer(request)
        if result.admitted:
            assert result.entry is not None
            result.entry.shard = shard
            self._depth_peak = max(self._depth_peak, self.depth)
        return replace(result, shard=shard)

    # -- dispatch -----------------------------------------------------------

    def pop_shard_batch(
        self, shard: int, max_items: int
    ) -> Tuple[List[QueueEntry], List[QueueEntry], List[QueueEntry]]:
        """One shard's ``(ready, expired, cancelled)`` slice."""
        return self.shards[shard].pop_batch(max_items)

    def cancel(self, request_id: str) -> bool:
        return any(shard.cancel(request_id) for shard in self.shards)

    def drain(self) -> List[QueueEntry]:
        return [entry for shard in self.shards for entry in shard.drain()]

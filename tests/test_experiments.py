"""Integration tests for the experiment harness (Section 8 exhibits).

These use reduced sizes (few seeds, short traces) -- the full-scale runs
live in ``benchmarks/`` -- but assert the *shape* properties the paper
reports, which must already be visible at small scale.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import (
    run_fig6,
    run_fig7a,
    run_fig7b,
    table1_rows,
    table3_rows,
    table4_rows,
)
from repro.experiments.runner import (
    ComparisonPoint,
    SeriesResult,
    render_ascii_chart,
    write_csv,
)


@pytest.fixture(scope="module")
def fig6_fft():
    return run_fig6("fft", u_values=[2, 5, 9], seeds=2, instances=24)


class TestFig6:
    def test_sdem_beats_mbkps_everywhere(self, fig6_fft):
        for p in fig6_fft.points:
            assert p.sdem_total < p.mbkps_total
            assert p.sdem_total < p.mbkp_total

    def test_memory_saving_grows_at_low_utilization(self, fig6_fft):
        """Fig. 6a trend: more idle time -> more memory saving."""
        savings = [p.sdem_memory_saving for p in fig6_fft.points]
        assert savings[-1] > savings[0]

    def test_mbkps_close_to_mbkp_at_high_utilization(self, fig6_fft):
        """At U=2 MBKPS 'can barely idle the memory' (Section 8.2)."""
        first = fig6_fft.points[0]
        assert abs(first.mbkps_system_saving) < 25.0
        assert first.mbkps_system_saving < fig6_fft.points[-1].mbkps_system_saving

    def test_matmul_variant_runs(self):
        series = run_fig6("matmul", u_values=[3], seeds=1, instances=16)
        assert len(series.points) == 1
        assert series.points[0].sdem_total < series.points[0].mbkp_total


class TestFig7:
    def test_fig7a_grid_and_headline(self):
        series = run_fig7a(
            alpha_m_values=[2000.0, 6000.0],
            x_values=[200.0, 600.0],
            seeds=2,
            trace_length=25,
        )
        assert len(series.points) == 4
        for p in series.points:
            assert p.sdem_total < p.mbkps_total
        # Paper: average SDEM-ON improvement over MBKPS ~ 9.74% (ours is
        # larger; the shape requirement is strictly positive).
        assert series.mean_improvement() > 0.0

    def test_fig7b_mild_dependence_on_xi_m(self):
        """'There is basically no difference with the varying of
        break-even time' -- we observe a mild decline rather than total
        flatness (see EXPERIMENTS.md), but the improvement must stay
        positive and far from collapsing across the extreme xi_m values."""
        series = run_fig7b(
            xi_m_values=[15.0, 70.0], x_values=[400.0], seeds=2, trace_length=25
        )
        improvements = [p.sdem_vs_mbkps_improvement for p in series.points]
        assert all(v > 0.0 for v in improvements)
        assert abs(improvements[0] - improvements[1]) < 40.0

    def test_mbkps_approaches_mbkp_as_x_shrinks(self):
        series = run_fig7a(
            alpha_m_values=[4000.0],
            x_values=[100.0, 800.0],
            seeds=2,
            trace_length=25,
        )
        dense, sparse = series.points
        assert abs(dense.mbkps_system_saving) < abs(sparse.mbkps_system_saving)


class TestTables:
    def test_table1_all_rows_execute(self):
        rows = table1_rows(n=6)
        assert len(rows) == 6
        sections = [row["section"] for row in rows]
        assert sections == ["4.1", "4.2", "5.1", "5.2", "6", "7"]
        for row in rows:
            assert float(row["measured_ms"]) >= 0.0

    def test_table3_regimes(self):
        rows = table3_rows()
        assert len(rows) == 4
        by_case = {row["case"]: row for row in rows}
        # Rows 2 and 4: memory cannot amortize a sleep -> Delta = 0.
        assert float(by_case["xi <= Delta < xi_m"]["delta_ms"]) == pytest.approx(
            0.0, abs=1e-6
        )
        assert float(by_case["Delta < xi, xi_m"]["delta_ms"]) == pytest.approx(
            0.0, abs=1e-6
        )
        # Row 1: free-ish transitions -> the memory sleeps.
        assert float(by_case["Delta >= xi, xi_m"]["delta_ms"]) > 1.0

    def test_table4_matches_paper_grid(self):
        rows = table4_rows()
        assert len(rows) == 8
        assert [r["x_ms"] for r in rows] == [
            "100", "200", "300", "400", "500", "600", "700", "800",
        ]
        assert rows[3]["alpha_m_w"] == "4"
        assert rows[4]["xi_m_ms"] == "40"


class TestRunnerHelpers:
    def test_write_csv_roundtrip(self, fig6_fft, tmp_path):
        path = os.path.join(tmp_path, "fig6a.csv")
        write_csv(fig6_fft, path)
        with open(path) as handle:
            lines = handle.read().strip().splitlines()
        assert len(lines) == 1 + len(fig6_fft.points)
        assert "sdem_system_saving_pct" in lines[0]

    def test_write_csv_rejects_empty(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv(SeriesResult(name="empty"), os.path.join(tmp_path, "x.csv"))

    def test_ascii_chart_renders(self):
        art = render_ascii_chart(
            "demo", [("U=2", {"sdem": 40.0, "mbkps": 10.0})], width=20
        )
        assert "demo" in art and "U=2" in art and "#" in art
        assert "40.00%" in art

    def test_ascii_chart_all_zero_rows_not_full_width(self):
        # A series of zeros must not normalize by the 1e-9 floor into
        # misleading full-width bars.
        art = render_ascii_chart(
            "flat", [("U=2", {"sdem": 0.0, "mbkps": 0.0})], width=20
        )
        assert "#" not in art
        assert "all values ~0" in art

    def test_write_csv_uses_utf8(self, tmp_path):
        series = SeriesResult(name="unicode")
        series.points.append(
            ComparisonPoint(
                label="ξ_m=40ms",
                sdem_total=1.0,
                mbkps_total=2.0,
                mbkp_total=3.0,
                sdem_memory=1.0,
                mbkps_memory=2.0,
                mbkp_memory=3.0,
            )
        )
        path = os.path.join(tmp_path, "unicode.csv")
        write_csv(series, path)
        with open(path, encoding="utf-8") as handle:
            assert "ξ_m=40ms" in handle.read()


class TestConfidenceIntervals:
    def test_rows_include_ci_halfwidth(self, fig6_fft):
        rows = fig6_fft.rows()
        assert all("sdem_saving_ci95_pct" in row for row in rows)
        assert all(float(row["sdem_saving_ci95_pct"]) >= 0.0 for row in rows)

    def test_saving_spread_statistics(self, fig6_fft):
        for point in fig6_fft.points:
            spread = point.saving_spread()
            assert spread is not None
            assert spread.n == len(point.sdem_saving_samples)
            lo = spread.mean - spread.ci95_halfwidth
            hi = spread.mean + spread.ci95_halfwidth
            assert lo <= spread.mean <= hi
